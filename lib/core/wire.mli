(** Binary wire format for chunks and chunk-carrying packets.

    This is the "simple version of chunks ... easy to parse because of
    their fixed-field format" of Appendix A — every field explicit.  A
    chunk header occupies {!header_size} bytes:

    {v
    offset  field
    0       TYPE   (u8;  0 = data, >=1 = control kind)
    1       SIZE   (u16 be)
    3       LEN    (u32 be; 0 = terminator)
    7       C.ID   (u32 be)   C.SN (u64 be)   C.ST (u8)
    20      T.ID   (u32 be)   T.SN (u64 be)   T.ST (u8)
    33      X.ID   (u32 be)   X.SN (u64 be)   X.ST (u8)
    46      payload (SIZE*LEN bytes for data, LEN bytes for control)
    v}

    A packet is a fixed-capacity envelope: chunks back to back, then —
    if at least one header of slack remains — a terminator (an all-zero
    header, i.e. LEN = 0) marking the end of the valid-chunk region
    (paper §2), then zero padding.  Bandwidth-efficient variants of this
    encoding live in {!Compress}. *)

val header_size : int
(** 46 bytes. *)

val chunk_size : Chunk.t -> int
(** On-wire bytes of one chunk: header + payload ({!header_size} for a
    terminator). *)

val chunks_size : Chunk.t list -> int
(** Total on-wire bytes of a chunk sequence (no terminator). *)

val encode_chunk : Buffer.t -> Chunk.t -> unit
(** Append one chunk's wire image. *)

val encode_header : Buffer.t -> Header.t -> unit
(** Append just the {!header_size}-byte header image. *)

val decode_header : bytes -> int -> (Header.t, string) result
(** Parse one header image (no payload expected after it). *)

val decode_chunk : bytes -> int -> (Chunk.t * int, string) result
(** [decode_chunk b off] parses one chunk at [off] and returns it with
    the offset just past it.  A terminator decodes as
    [Chunk.terminator]. *)

val encode_packet : ?capacity:int -> Chunk.t list -> (bytes, string) result
(** [encode_packet ~capacity cs] builds one packet.  Fails if the chunks
    exceed [capacity].  Without [capacity] the packet is exactly the
    chunks' size (no terminator needed: end-of-packet delimits).  With
    [capacity], the packet is padded to exactly [capacity] bytes with a
    terminator before the padding whenever slack remains (if the slack
    is smaller than a header it is zero-filled, which decodes as
    end-of-packet). *)

val decode_packet : bytes -> (Chunk.t list, string) result
(** Parse all chunks of a packet, stopping at a terminator, at
    end-of-buffer, or at a residue smaller than one header (treated as
    padding only if all-zero). *)

(** {1 Zero-allocation packet scanning}

    The fast-path front end of the flow cache
    ([Transport.Flowcache]-based dispatch in [Transport.Multi]): walk a
    packet image once, validating its structure and recording chunk
    start offsets, without building [Chunk.t] values or copying payload
    bytes.  Label fields are then read straight out of the buffer at
    those offsets.

    The scanner is {e exactly} as strict as {!decode_packet}:
    [Scan.packet] accepts a buffer iff [decode_packet] returns [Ok] on
    it, and on acceptance the recorded offsets are precisely where the
    chunks of that [Ok] list start, in order (terminator and padding
    excluded).  This equivalence is what lets the cached fast path keep
    the slow path's all-or-nothing packet-drop semantics; it is pinned
    down by a fuzz property in the test suite. *)

module Scan : sig
  type t
  (** Reusable scan scratch: a growable offset array.  Create once per
      ingest loop and pass to every {!packet} call — steady-state
      scanning then allocates nothing. *)

  val create : unit -> t
  (** Fresh scratch (initial capacity 16 chunks, grows as needed). *)

  val packet : t -> bytes -> bool
  (** [packet s b] validates the whole packet image [b], recording the
      start offset of each non-terminator chunk in [s].  Returns [false]
      — and the packet must be dropped whole, exactly like a
      {!decode_packet} error — on any malformed chunk or non-zero
      trailing residue.  Resets [s] first, so a scratch can be reused
      freely. *)

  val count : t -> int
  (** Number of chunk offsets recorded by the last {!packet} call. *)

  val offset : t -> int -> int
  (** [offset s i] is the start of the [i]th chunk ([0 <= i <
      count s]).  Unchecked array access. *)

  val c_id_at : t -> int -> int
  (** [c_id_at s i] is the [i]th chunk's C.ID, recorded during the
      validation pass — the demultiplexing key, readable without
      touching the packet again. *)

  val ctype_code_at : t -> int -> int
  (** [ctype_code_at s i] is the [i]th chunk's TYPE code (0 = data),
      recorded during the validation pass. *)

  val c_st_at : t -> int -> bool
  (** [c_st_at s i] is the [i]th chunk's C.ST bit, recorded during the
      validation pass. *)

  (** {2 Field readers}

      Each reader takes the packet buffer and a chunk offset produced by
      a successful {!packet} call; no bounds or validity checks are
      performed.  Offsets within the 46-byte header are as documented at
      the top of this file. *)

  val ctype_code : bytes -> int -> int
  (** Raw TYPE byte ([0] = data; see {!Ctype.of_code}). *)

  val is_data_chunk : bytes -> int -> bool
  (** [true] iff the TYPE byte is [0].  Note a scanned chunk is never a
      terminator, so unlike {!Chunk.is_data} there is no LEN caveat. *)

  val size : bytes -> int -> int
  (** SIZE field (bytes per element). *)

  val len : bytes -> int -> int
  (** LEN field (element count; payload byte count for control). *)

  val c_id : bytes -> int -> int
  val c_sn : bytes -> int -> int

  val c_st : bytes -> int -> bool
  (** Connection-level ID / first-element SN / last-element ST. *)

  val t_id : bytes -> int -> int
  val t_sn : bytes -> int -> int

  val t_st : bytes -> int -> bool
  (** TPDU-level ID / first-element SN / last-element ST. *)

  val x_id : bytes -> int -> int
  val x_sn : bytes -> int -> int

  val x_st : bytes -> int -> bool
  (** External-PDU-level ID / first-element SN / last-element ST. *)

  val chunk : bytes -> int -> Chunk.t
  (** Materialise the chunk at a scanned offset — the slow-path
      fallback's bridge back to {!Chunk.t} processing.  Equal (by
      {!Chunk.equal}) to what {!decode_chunk} returns there.  Allocates;
      only called off the fast path. *)
end

(** {1 Checksummed record framing}

    Length-prefixed, WSC-2-checksummed records for persisted endpoint
    state (crash-recovery snapshots and their append-only journals):
    [LEN (u32 be) | TAG (u8) | payload | parity (8 bytes)], with the
    parity computed over TAG and payload together.  Decoding never
    raises on malformed input. *)

val record_overhead : int
(** Framing bytes per record beyond the payload (13). *)

val encode_record : Buffer.t -> tag:int -> bytes -> unit
(** Append one record.
    @raise Invalid_argument if [tag] is outside [0, 255]. *)

val decode_record : bytes -> int -> (int * bytes * int, string) result
(** [decode_record b off] parses one record at [off] and returns
    [(tag, payload, next_off)].  Fails — never raises — on truncation,
    a length prefix that overruns the buffer, or a checksum
    mismatch. *)

val decode_records : bytes -> int -> (int * bytes) list * bool
(** Parse records back to back until end-of-buffer or the first bad
    record.  Returns the good prefix and whether decoding stopped early
    ([true] = torn tail was truncated) — the journal-recovery rule:
    everything before the first damaged record is trusted, everything
    after it is discarded. *)
