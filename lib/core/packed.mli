(** Intra-packet header elision (Appendix A): "because the chunk
    following the last TPDU DATA chunk is always a TPDU ED chunk, the ED
    chunk does not require a chunk header because its TYPE is known, and
    its C.ID and T.ID fields can be derived from the DATA chunk header."

    This codec encodes a packet's chunk sequence with a one-byte tag per
    chunk: either a full {!Wire} image, or an {e implied-ED} record —
    just the ED payload, its header reconstructed from the preceding
    data chunk.  The transformation is applied only when the
    reconstruction would be exact, so decoding always recovers the
    original chunks bit-for-bit. *)

val implied_ed_header : Chunk.t -> payload_len:int -> Header.t option
(** The ED-chunk header implied by a preceding data chunk (its TPDU's
    identity, [payload_len] bytes of control payload), or [None] if the
    argument is not a data chunk. *)

val encode_packet : ?capacity:int -> Chunk.t list -> (bytes, string) result
(** Encode with elision; same [capacity]/padding contract as
    {!Wire.encode_packet}. *)

val decode_packet : bytes -> (Chunk.t list, string) result

val packed_size : Chunk.t list -> int
(** Wire bytes {!encode_packet} will use (without capacity padding);
    compare with {!Wire.chunks_size} for the saving. *)
