type t = { mtu : int; chunks : Chunk.t list }

let chunks p = p.chunks
let mtu p = p.mtu

let wire_used p = Wire.chunks_size p.chunks

let efficiency p =
  let payload =
    List.fold_left (fun acc c -> acc + Chunk.payload_bytes c) 0 p.chunks
  in
  float_of_int payload /. float_of_int p.mtu

(* Split [chunk] so the first piece fits in [room] payload+header bytes;
   returns (fitting piece option, remainder option). *)
let split_for_room chunk ~room =
  let need = Wire.chunk_size chunk in
  if need <= room then (Some chunk, None)
  else if Chunk.is_control chunk then (None, Some chunk)
  else begin
    let size = chunk.Chunk.header.Header.size in
    let payload_room = room - Wire.header_size in
    let elems = if payload_room <= 0 then 0 else payload_room / size in
    if elems <= 0 then (None, Some chunk)
    else
      let a, b = Fragment.split_exn chunk ~elems in
      (Some a, Some b)
  end

let pack ~mtu chunk_list =
  if mtu <= Wire.header_size then
    Error
      (Printf.sprintf "Packet.pack: mtu %d cannot hold a chunk header" mtu)
  else begin
    let packets = ref [] in
    let current = ref [] in
    let used = ref 0 in
    let flush () =
      if !current <> [] then begin
        packets := { mtu; chunks = List.rev !current } :: !packets;
        current := [];
        used := 0
      end
    in
    let err = ref None in
    let rec push chunk =
      if !err = None then begin
        match split_for_room chunk ~room:(mtu - !used) with
        | Some piece, rest ->
            current := piece :: !current;
            used := !used + Wire.chunk_size piece;
            Option.iter push rest
        | None, Some rest ->
            if !current = [] then
              (* Even an empty envelope cannot hold it: indivisible
                 control chunk larger than the MTU. *)
              err :=
                Some
                  (Printf.sprintf
                     "Packet.pack: indivisible chunk of %d bytes exceeds mtu \
                      %d"
                     (Wire.chunk_size rest) mtu)
            else begin
              flush ();
              push rest
            end
        | None, None -> assert false
      end
    in
    List.iter push chunk_list;
    flush ();
    match !err with
    | Some e -> Error e
    | None -> Ok (List.rev !packets)
  end

let pack_one_per_packet ~mtu chunk_list =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
        match Fragment.split_to_payload chunk ~max_payload:(mtu - Wire.header_size) with
        | Error _ as e -> e
        | Ok pieces ->
            let packets = List.map (fun c -> { mtu; chunks = [ c ] }) pieces in
            go (List.rev_append packets acc) rest)
  in
  if mtu <= Wire.header_size then
    Error "Packet.pack_one_per_packet: mtu cannot hold a chunk header"
  else go [] chunk_list

let encode p =
  match Wire.encode_packet ~capacity:p.mtu p.chunks with
  | Ok b -> b
  | Error e ->
      (* Unreachable: pack guarantees the capacity bound. *)
      invalid_arg e

let encode_unpadded p =
  match Wire.encode_packet p.chunks with
  | Ok b -> b
  | Error e -> invalid_arg e

let decode ~mtu b =
  if Bytes.length b > mtu then Error "Packet.decode: longer than mtu"
  else
    match Wire.decode_packet b with
    | Error _ as e -> e
    | Ok cs -> Ok { mtu; chunks = cs }
