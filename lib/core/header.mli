(** A chunk header: the single label shared by a run of data elements
    with contiguous SNs and identical TYPE and IDs (paper §2, Fig. 2).

    The header carries:
    - [ctype] — the TYPE shared by all elements of the chunk;
    - [size]  — the SIZE field: bytes per atomic data element.  SIZE
      guards the atomic units of protocol processing (e.g. cipher
      blocks) against being split by fragmentation;
    - [len]   — the LEN field: number of data elements in the chunk
      (for control chunks, which are indivisible, [len] is the payload
      byte count — it exists only so the payload can be delimited on the
      wire).  [len = 0] marks a terminator chunk (end of the valid-chunk
      region of a packet);
    - [c], [t], [x] — one {!Ftuple.t} per framing level: the connection
      (the whole conversation as one large PDU), the TPDU (unit of error
      control) and the external PDU (e.g. an Application Layer Frame).
      Each tuple holds the SN of the chunk's first element and the ST
      bit of its last element. *)

val max_size : int
(** Largest representable SIZE field ([0xFFFF]; it is a u16 on the
    wire). *)

val max_len : int
(** Largest LEN {!v} accepts ([0x3FFF_FFFF]), keeping [size * len]
    comfortably inside a native [int] on 64-bit platforms. *)

type t = {
  ctype : Ctype.t;
  size : int;
  len : int;
  c : Ftuple.t;  (** connection-level framing *)
  t : Ftuple.t;  (** TPDU-level framing *)
  x : Ftuple.t;  (** external-PDU-level framing *)
}

val v :
  ctype:Ctype.t ->
  size:int ->
  len:int ->
  c:Ftuple.t ->
  t:Ftuple.t ->
  x:Ftuple.t ->
  (t, string) result
(** Smart constructor; validates field ranges: [1 <= size <= 0xFFFF] for
    data chunks, [len >= 0], and that a terminator has [len = 0]. *)

val terminator : t
(** The LEN = 0 chunk header placed after the last valid chunk in a
    packet (paper §2). *)

val is_terminator : t -> bool

val payload_bytes : t -> int
(** Bytes of payload this header announces: [size * len] for data,
    [len] for control chunks. *)

val same_labels : t -> t -> bool
(** [same_labels a b]: equal TYPE, SIZE and all three IDs — the
    precondition (minus SN adjacency) of Appendix D mergeability. *)

val equal : t -> t -> bool
(** Field-wise equality over TYPE, SIZE, LEN and all three tuples. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: TYPE, geometry and the C/T/X tuples. *)
