let header_size = 46

let chunk_size c = header_size + Chunk.payload_bytes c

let chunks_size cs = List.fold_left (fun acc c -> acc + chunk_size c) 0 cs

let put_tuple buf (u : Ftuple.t) =
  Buffer.add_int32_be buf (Int32.of_int u.Ftuple.id);
  Buffer.add_int64_be buf (Int64.of_int u.Ftuple.sn);
  Buffer.add_uint8 buf (if u.Ftuple.st then 1 else 0)

let encode_header buf (h : Header.t) =
  Buffer.add_uint8 buf (Ctype.code h.Header.ctype);
  Buffer.add_uint16_be buf h.Header.size;
  Buffer.add_int32_be buf (Int32.of_int h.Header.len);
  put_tuple buf h.Header.c;
  put_tuple buf h.Header.t;
  put_tuple buf h.Header.x

let encode_chunk buf c =
  encode_header buf c.Chunk.header;
  Buffer.add_bytes buf c.Chunk.payload

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF

let get_tuple b off =
  let id = get_u32 b off in
  let sn = Int64.to_int (Bytes.get_int64_be b (off + 4)) in
  let st_byte = Bytes.get_uint8 b (off + 12) in
  if sn < 0 then Error "Wire: SN overflows native int"
  else if st_byte > 1 then Error "Wire: invalid ST byte"
  else Ok (Ftuple.v ~st:(st_byte = 1) ~id ~sn ())

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode_header b off =
  if off < 0 || Bytes.length b - off < header_size then
    Error "Wire.decode_header: truncated header"
  else begin
    let* ctype = Ctype.of_code (Bytes.get_uint8 b off) in
    let size = Bytes.get_uint16_be b (off + 1) in
    let len = get_u32 b (off + 3) in
    let* c = get_tuple b (off + 7) in
    let* t = get_tuple b (off + 20) in
    let* x = get_tuple b (off + 33) in
    Header.v ~ctype ~size ~len ~c ~t ~x
  end

let decode_chunk b off =
  if off < 0 || Bytes.length b - off < header_size then
    Error "Wire.decode_chunk: truncated header"
  else begin
    let* h = decode_header b off in
    let nbytes = Header.payload_bytes h in
    let payload_off = off + header_size in
    if Bytes.length b - payload_off < nbytes then
      Error "Wire.decode_chunk: truncated payload"
    else begin
      let payload = Bytes.sub b payload_off nbytes in
      let* chunk = Chunk.make h payload in
      Ok (chunk, payload_off + nbytes)
    end
  end

let encode_packet ?capacity chunks =
  let buf = Buffer.create 256 in
  List.iter (encode_chunk buf) chunks;
  let used = Buffer.length buf in
  match capacity with
  | None -> Ok (Buffer.to_bytes buf)
  | Some cap when used > cap ->
      Error
        (Printf.sprintf "Wire.encode_packet: %d bytes exceed capacity %d" used
           cap)
  | Some cap ->
      if cap - used >= header_size then encode_chunk buf Chunk.terminator;
      let b = Bytes.make cap '\000' in
      Buffer.blit buf 0 b 0 (Buffer.length buf);
      Ok b

(* Checksummed record framing for persisted state (crash-recovery
   snapshots and journals).  A record is

     LEN (u32 be) | TAG (u8) | payload (LEN bytes) | WSC-2 parity (8)

   with the parity computed over TAG + payload, so a bit flip anywhere
   in the record body — or a LEN that slices the wrong region — fails
   the checksum.  Decoding never raises: a bad record is an [Error],
   and [decode_records] truncates at the first one (torn-write
   tolerance). *)

let record_overhead = 4 + 1 + 8

let encode_record buf ~tag payload =
  if tag < 0 || tag > 0xFF then invalid_arg "Wire.encode_record: bad tag";
  let n = Bytes.length payload in
  let body = Bytes.create (1 + n) in
  Bytes.set_uint8 body 0 tag;
  Bytes.blit payload 0 body 1 n;
  let par = Wsc2.encode_bytes ~pos:0 body in
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int n);
  Buffer.add_bytes buf len;
  Buffer.add_bytes buf body;
  Buffer.add_bytes buf (Wsc2.parity_to_bytes par)

let decode_record b off =
  let avail = Bytes.length b - off in
  if off < 0 || avail < record_overhead then
    Error "Wire.decode_record: truncated record"
  else begin
    let n = get_u32 b off in
    if n > avail - record_overhead then
      Error "Wire.decode_record: length prefix exceeds buffer"
    else begin
      let body = Bytes.sub b (off + 4) (1 + n) in
      let expected = Wsc2.parity_of_bytes b (off + 4 + 1 + n) in
      if not (Wsc2.parity_equal expected (Wsc2.encode_bytes ~pos:0 body)) then
        Error "Wire.decode_record: checksum mismatch"
      else
        let tag = Bytes.get_uint8 body 0 in
        let payload = Bytes.sub body 1 n in
        Ok (tag, payload, off + record_overhead + n)
    end
  end

let decode_records b off =
  let n = Bytes.length b in
  let rec go off acc =
    if off >= n then (List.rev acc, false)
    else
      match decode_record b off with
      | Ok (tag, payload, off') -> go off' ((tag, payload) :: acc)
      | Error _ -> (List.rev acc, true)
  in
  go off []

let all_zero b off =
  let rec go i = i >= Bytes.length b || (Bytes.get b i = '\000' && go (i + 1)) in
  go off

let decode_packet b =
  let n = Bytes.length b in
  let rec go off acc =
    if off >= n then Ok (List.rev acc)
    else if n - off < header_size then
      if all_zero b off then Ok (List.rev acc)
      else Error "Wire.decode_packet: trailing garbage"
    else
      match decode_chunk b off with
      | Error _ as e -> e
      | Ok (c, off') ->
          if Chunk.is_terminator c then Ok (List.rev acc)
          else go off' (c :: acc)
  in
  go 0 []

(* Zero-allocation structural packet scanner.

   [Scan.packet] walks a packet image and records the start offset of
   every non-terminator chunk without building a single [Chunk.t] or
   copying a payload byte.  The validity predicate is byte-for-byte the
   one [decode_packet] applies — the scanner accepts a buffer iff
   [decode_packet] returns [Ok], with the scratch holding exactly the
   offsets of the chunks [decode_packet] would return, in order.  The
   checks mirrored from the slow path, per chunk at [off]:

   - LEN within [Header.max_len]                    (Header.v)
   - data chunk with LEN > 0 has SIZE >= 1          (Header.v; SIZE is a
     u16 so the upper bound can never trip)
   - each Ftuple SN non-negative after the exact
     [Int64.to_int] conversion, each ST byte <= 1   (get_tuple)
   - announced payload fits the buffer              (decode_chunk)
   - LEN = 0 terminates the scan, rest of the
     buffer ignored                                 (decode_packet)
   - a residue shorter than one header must be
     all-zero padding                               (decode_packet)

   The TYPE byte needs no check: every u8 is a valid [Ctype.code].  The
   field readers and [Scan.chunk] skip validation entirely and are only
   meaningful at offsets a successful [packet] call produced. *)

module Scan = struct
  (* Bounds-check-free header reads for the validating loop.  These are
     the same compiler primitives the stdlib builds [Bytes.get_uint16_be]
     etc. on, minus the bounds check; every call site below runs after
     [off + header_size <= length b] has been established, and all reads
     stay inside that header. *)
  external unsafe_get16 : bytes -> int -> int = "%caml_bytes_get16u"
  external unsafe_get32 : bytes -> int -> int32 = "%caml_bytes_get32u"
  external swap16 : int -> int = "%bswap16"
  external swap32 : int32 -> int32 = "%bswap_int32"

  let u8 b i = Char.code (Bytes.unsafe_get b i)

  let u16 b i =
    let x = unsafe_get16 b i in
    if Sys.big_endian then x else swap16 x

  let u32 b i =
    let x = unsafe_get32 b i in
    Int32.to_int (if Sys.big_endian then x else swap32 x) land 0xFFFF_FFFF

  type t = {
    mutable offs : int array;
    (* dispatch prefix recorded while validating, so the fast path
       never re-reads it: C.ID, and the TYPE code with the C.ST byte
       folded into bit 8 *)
    mutable cids : int array;
    mutable metas : int array;
    mutable n : int;
  }

  let create () =
    { offs = Array.make 16 0; cids = Array.make 16 0;
      metas = Array.make 16 0; n = 0 }

  let count s = s.n

  (* Unchecked reads, as documented: [i] must come from a [0, count)
     loop over the last accepted packet. *)
  let offset s i = Array.unsafe_get s.offs i
  let c_id_at s i = Array.unsafe_get s.cids i
  let ctype_code_at s i = Array.unsafe_get s.metas i land 0xFF
  let c_st_at s i = Array.unsafe_get s.metas i >= 0x100

  let push s off cid meta =
    if s.n = Array.length s.offs then begin
      let grow a =
        let bigger = Array.make (2 * s.n) 0 in
        Array.blit a 0 bigger 0 s.n;
        bigger
      in
      s.offs <- grow s.offs;
      s.cids <- grow s.cids;
      s.metas <- grow s.metas
    end;
    (* the capacity check above keeps [s.n] in bounds for all three *)
    Array.unsafe_set s.offs s.n off;
    Array.unsafe_set s.cids s.n cid;
    Array.unsafe_set s.metas s.n meta;
    s.n <- s.n + 1

  (* SN validity mirrors [get_tuple]: [Int64.to_int sn >= 0], i.e. bit
     62 of the big-endian word clear (bit 63 is dropped by [to_int]) —
     one byte read instead of a boxed [Int64]. *)
  let tuple_ok b off = u8 b (off + 4) land 0x40 = 0 && u8 b (off + 12) <= 1

  let packet s b =
    s.n <- 0;
    let nb = Bytes.length b in
    let rec go off =
      if off >= nb then true
      else if nb - off < header_size then all_zero b off
      else begin
        let len = u32 b (off + 3) in
        if len > Header.max_len then false
        else begin
          let code = u8 b off in
          let is_data = code = 0 in
          let size = u16 b (off + 1) in
          if is_data && len > 0 && size < 1 then false
          else if
            not
              (tuple_ok b (off + 7)
              && tuple_ok b (off + 20)
              && tuple_ok b (off + 33))
          then false
          else if len = 0 then true (* terminator: rest of packet ignored *)
          else begin
            let nbytes = if is_data then size * len else len in
            if nb - (off + header_size) < nbytes then false
            else begin
              push s off
                (u32 b (off + 7))
                (code lor (u8 b (off + 19) lsl 8));
              go (off + header_size + nbytes)
            end
          end
        end
      end
    in
    go 0

  let ctype_code b off = Bytes.get_uint8 b off
  let is_data_chunk b off = Bytes.get_uint8 b off = 0
  let size b off = Bytes.get_uint16_be b (off + 1)
  let len b off = get_u32 b (off + 3)
  let c_id b off = get_u32 b (off + 7)
  let c_sn b off = Int64.to_int (Bytes.get_int64_be b (off + 11))
  let c_st b off = Bytes.get_uint8 b (off + 19) = 1
  let t_id b off = get_u32 b (off + 20)
  let t_sn b off = Int64.to_int (Bytes.get_int64_be b (off + 24))
  let t_st b off = Bytes.get_uint8 b (off + 32) = 1
  let x_id b off = get_u32 b (off + 33)
  let x_sn b off = Int64.to_int (Bytes.get_int64_be b (off + 37))
  let x_st b off = Bytes.get_uint8 b (off + 45) = 1

  let tuple b off =
    Ftuple.v
      ~st:(Bytes.get_uint8 b (off + 12) = 1)
      ~id:(get_u32 b off)
      ~sn:(Int64.to_int (Bytes.get_int64_be b (off + 4)))
      ()

  let chunk b off =
    let ctype =
      match Bytes.get_uint8 b off with 0 -> Ctype.Data | k -> Ctype.Control k
    in
    let h =
      {
        Header.ctype;
        size = Bytes.get_uint16_be b (off + 1);
        len = get_u32 b (off + 3);
        c = tuple b (off + 7);
        t = tuple b (off + 20);
        x = tuple b (off + 33);
      }
    in
    Chunk.make_exn h (Bytes.sub b (off + header_size) (Header.payload_bytes h))
end
