let header_size = 46

let chunk_size c = header_size + Chunk.payload_bytes c

let chunks_size cs = List.fold_left (fun acc c -> acc + chunk_size c) 0 cs

let put_tuple buf (u : Ftuple.t) =
  Buffer.add_int32_be buf (Int32.of_int u.Ftuple.id);
  Buffer.add_int64_be buf (Int64.of_int u.Ftuple.sn);
  Buffer.add_uint8 buf (if u.Ftuple.st then 1 else 0)

let encode_header buf (h : Header.t) =
  Buffer.add_uint8 buf (Ctype.code h.Header.ctype);
  Buffer.add_uint16_be buf h.Header.size;
  Buffer.add_int32_be buf (Int32.of_int h.Header.len);
  put_tuple buf h.Header.c;
  put_tuple buf h.Header.t;
  put_tuple buf h.Header.x

let encode_chunk buf c =
  encode_header buf c.Chunk.header;
  Buffer.add_bytes buf c.Chunk.payload

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF

let get_tuple b off =
  let id = get_u32 b off in
  let sn = Int64.to_int (Bytes.get_int64_be b (off + 4)) in
  let st_byte = Bytes.get_uint8 b (off + 12) in
  if sn < 0 then Error "Wire: SN overflows native int"
  else if st_byte > 1 then Error "Wire: invalid ST byte"
  else Ok (Ftuple.v ~st:(st_byte = 1) ~id ~sn ())

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode_header b off =
  if off < 0 || Bytes.length b - off < header_size then
    Error "Wire.decode_header: truncated header"
  else begin
    let* ctype = Ctype.of_code (Bytes.get_uint8 b off) in
    let size = Bytes.get_uint16_be b (off + 1) in
    let len = get_u32 b (off + 3) in
    let* c = get_tuple b (off + 7) in
    let* t = get_tuple b (off + 20) in
    let* x = get_tuple b (off + 33) in
    Header.v ~ctype ~size ~len ~c ~t ~x
  end

let decode_chunk b off =
  if off < 0 || Bytes.length b - off < header_size then
    Error "Wire.decode_chunk: truncated header"
  else begin
    let* h = decode_header b off in
    let nbytes = Header.payload_bytes h in
    let payload_off = off + header_size in
    if Bytes.length b - payload_off < nbytes then
      Error "Wire.decode_chunk: truncated payload"
    else begin
      let payload = Bytes.sub b payload_off nbytes in
      let* chunk = Chunk.make h payload in
      Ok (chunk, payload_off + nbytes)
    end
  end

let encode_packet ?capacity chunks =
  let buf = Buffer.create 256 in
  List.iter (encode_chunk buf) chunks;
  let used = Buffer.length buf in
  match capacity with
  | None -> Ok (Buffer.to_bytes buf)
  | Some cap when used > cap ->
      Error
        (Printf.sprintf "Wire.encode_packet: %d bytes exceed capacity %d" used
           cap)
  | Some cap ->
      if cap - used >= header_size then encode_chunk buf Chunk.terminator;
      let b = Bytes.make cap '\000' in
      Buffer.blit buf 0 b 0 (Buffer.length buf);
      Ok b

(* Checksummed record framing for persisted state (crash-recovery
   snapshots and journals).  A record is

     LEN (u32 be) | TAG (u8) | payload (LEN bytes) | WSC-2 parity (8)

   with the parity computed over TAG + payload, so a bit flip anywhere
   in the record body — or a LEN that slices the wrong region — fails
   the checksum.  Decoding never raises: a bad record is an [Error],
   and [decode_records] truncates at the first one (torn-write
   tolerance). *)

let record_overhead = 4 + 1 + 8

let encode_record buf ~tag payload =
  if tag < 0 || tag > 0xFF then invalid_arg "Wire.encode_record: bad tag";
  let n = Bytes.length payload in
  let body = Bytes.create (1 + n) in
  Bytes.set_uint8 body 0 tag;
  Bytes.blit payload 0 body 1 n;
  let par = Wsc2.encode_bytes ~pos:0 body in
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int n);
  Buffer.add_bytes buf len;
  Buffer.add_bytes buf body;
  Buffer.add_bytes buf (Wsc2.parity_to_bytes par)

let decode_record b off =
  let avail = Bytes.length b - off in
  if off < 0 || avail < record_overhead then
    Error "Wire.decode_record: truncated record"
  else begin
    let n = get_u32 b off in
    if n > avail - record_overhead then
      Error "Wire.decode_record: length prefix exceeds buffer"
    else begin
      let body = Bytes.sub b (off + 4) (1 + n) in
      let expected = Wsc2.parity_of_bytes b (off + 4 + 1 + n) in
      if not (Wsc2.parity_equal expected (Wsc2.encode_bytes ~pos:0 body)) then
        Error "Wire.decode_record: checksum mismatch"
      else
        let tag = Bytes.get_uint8 body 0 in
        let payload = Bytes.sub body 1 n in
        Ok (tag, payload, off + record_overhead + n)
    end
  end

let decode_records b off =
  let n = Bytes.length b in
  let rec go off acc =
    if off >= n then (List.rev acc, false)
    else
      match decode_record b off with
      | Ok (tag, payload, off') -> go off' ((tag, payload) :: acc)
      | Error _ -> (List.rev acc, true)
  in
  go off []

let all_zero b off =
  let rec go i = i >= Bytes.length b || (Bytes.get b i = '\000' && go (i + 1)) in
  go off

let decode_packet b =
  let n = Bytes.length b in
  let rec go off acc =
    if off >= n then Ok (List.rev acc)
    else if n - off < header_size then
      if all_zero b off then Ok (List.rev acc)
      else Error "Wire.decode_packet: trailing garbage"
    else
      match decode_chunk b off with
      | Error _ as e -> e
      | Ok (c, off') ->
          if Chunk.is_terminator c then Ok (List.rev acc)
          else go off' (c :: acc)
  in
  go 0 []
