(** Chunk reassembly — the paper's Appendix D algorithm.

    Two chunks are eligible for merging when they agree on TYPE, SIZE
    and all three IDs and the second's SNs at {e every} level follow the
    first's run.  Merging concatenates the payloads and keeps the second
    chunk's ST bits.  Because fragmentation always produces chunks, one
    round of merging ("repeated as long as eligible chunks exist")
    recovers data regardless of how many fragmentation stages occurred —
    reassembly is a single step (§3.1). *)

val mergeable : Chunk.t -> Chunk.t -> bool
(** The Appendix D eligibility predicate: [mergeable a b] iff [b] is the
    immediate continuation of [a].  Only data chunks are eligible —
    control information is indivisible (§2), so two control chunks are
    never merged. *)

val merge : Chunk.t -> Chunk.t -> (Chunk.t, string) result
(** [merge a b] concatenates eligible chunks ([Error] otherwise). *)

val merge_exn : Chunk.t -> Chunk.t -> Chunk.t

val coalesce : Chunk.t list -> Chunk.t list
(** One-step reassembly of a batch: repeatedly merges every eligible
    adjacent pair until none remains.  The input may be in any order and
    may interleave chunks of different PDUs/types; the output preserves
    first-appearance order of each maximal run and never loses or
    duplicates an element.  Terminator chunks are dropped.  Runs in
    O(n log n). *)

module Pool : sig
  (** Incremental reassembly-in-place for a stream of arriving chunks:
      the structure greedily merges each inserted chunk with already-held
      neighbours, emitting nothing until asked.  This models the
      "reassemble data into larger blocks before passing to application"
      option of §3.3 while still being single-step. *)

  type t

  val create : unit -> t

  val insert : t -> Chunk.t -> unit
  (** Add one chunk; merges with held neighbours at both ends when
      eligible.  Terminators are ignored. *)

  val held : t -> Chunk.t list
  (** Current maximal chunks, in ascending (ids, SN) order. *)

  val take_complete_tpdus : t -> Chunk.t list
  (** Remove and return every held data chunk that is a complete TPDU
      (T-level SN 0 with the T-level ST bit set). *)

  val size : t -> int
  (** Number of maximal chunks currently held. *)
end
