type t = {
  elem_size : int;
  mutable tpdu_elems : int;
  conn_id : int;
  mutable c_sn : int;    (* connection SN of the next element *)
  mutable tid : int;     (* current TPDU id *)
  mutable t_sn : int;    (* next element's SN within the current TPDU *)
  mutable xid : int;     (* external-PDU id allocated to the next frame *)
  mutable closed : bool;
}

let create ?(elem_size = 4) ?(tpdu_elems = 1024) ?(first_tid = 0)
    ?(first_xid = 0) ?(first_csn = 0) ~conn_id () =
  if elem_size < 1 || elem_size > 0xFFFF then
    invalid_arg "Framer.create: elem_size out of range";
  if tpdu_elems < 1 then invalid_arg "Framer.create: tpdu_elems < 1";
  if first_csn < 0 then invalid_arg "Framer.create: negative first_csn";
  {
    elem_size;
    tpdu_elems;
    conn_id;
    c_sn = first_csn;
    tid = first_tid;
    t_sn = 0;
    xid = first_xid;
    closed = false;
  }

let elem_size f = f.elem_size
let tpdu_elems f = f.tpdu_elems
let conn_id f = f.conn_id
let next_c_sn f = f.c_sn
let closed f = f.closed

let set_tpdu_elems f n =
  if n < 1 then Error "Framer.set_tpdu_elems: n < 1"
  else if f.t_sn <> 0 then
    Error "Framer.set_tpdu_elems: a TPDU is under construction"
  else begin
    f.tpdu_elems <- n;
    Ok ()
  end

let pad_frame ~elem_size b =
  let n = Bytes.length b in
  let rem = n mod elem_size in
  if rem = 0 then b
  else begin
    let padded = Bytes.make (n + elem_size - rem) '\000' in
    Bytes.blit b 0 padded 0 n;
    padded
  end

let push_frame ?(last = false) f frame =
  let nbytes = Bytes.length frame in
  if f.closed then Error "Framer.push_frame: connection already closed"
  else if nbytes = 0 then Error "Framer.push_frame: empty frame"
  else if nbytes mod f.elem_size <> 0 then
    Error "Framer.push_frame: frame length not a multiple of elem_size"
  else begin
    let total_elems = nbytes / f.elem_size in
    let x_id = f.xid in
    f.xid <- f.xid + 1;
    let chunks = ref [] in
    let x_sn = ref 0 in
    (* Cut a chunk at every TPDU boundary crossed; the frame end is an
       X-level boundary by construction. *)
    while !x_sn < total_elems do
      let room_in_tpdu = f.tpdu_elems - f.t_sn in
      let remaining = total_elems - !x_sn in
      let take = min room_in_tpdu remaining in
      let ends_frame = !x_sn + take = total_elems in
      let ends_tpdu = take = room_in_tpdu || (last && ends_frame) in
      let ends_conn = last && ends_frame in
      let c = Ftuple.v ~st:ends_conn ~id:f.conn_id ~sn:f.c_sn () in
      let tu = Ftuple.v ~st:ends_tpdu ~id:f.tid ~sn:f.t_sn () in
      let x = Ftuple.v ~st:ends_frame ~id:x_id ~sn:!x_sn () in
      let payload = Bytes.sub frame (!x_sn * f.elem_size) (take * f.elem_size) in
      (match Chunk.data ~size:f.elem_size ~c ~t:tu ~x payload with
      | Ok chunk -> chunks := chunk :: !chunks
      | Error e -> invalid_arg e);
      f.c_sn <- f.c_sn + take;
      f.t_sn <- f.t_sn + take;
      x_sn := !x_sn + take;
      if ends_tpdu then begin
        f.tid <- f.tid + 1;
        f.t_sn <- 0
      end
    done;
    if last then f.closed <- true;
    Ok (List.rev !chunks)
  end

let push_last_frame f frame = push_frame ~last:true f frame

let frames_of_stream f ~frame_bytes buffer =
  if frame_bytes < 1 then Error "Framer.frames_of_stream: frame_bytes < 1"
  else if frame_bytes mod f.elem_size <> 0 then
    (* otherwise every non-final frame would be zero-padded mid-stream *)
    Error "Framer.frames_of_stream: frame_bytes not a multiple of elem_size"
  else begin
    let total = Bytes.length buffer in
    if total = 0 then Error "Framer.frames_of_stream: empty stream"
    else begin
      let rec go off acc =
        let n = min frame_bytes (total - off) in
        let frame =
          pad_frame ~elem_size:f.elem_size (Bytes.sub buffer off n)
        in
        let last = off + n >= total in
        match push_frame ~last f frame with
        | Error _ as e -> e
        | Ok cs ->
            if last then Ok (List.concat (List.rev (cs :: acc)))
            else go (off + n) (cs :: acc)
      in
      go 0 []
    end
  end
