type policy = One_per_packet | Combine | Reassemble

let pp_policy fmt = function
  | One_per_packet -> Format.pp_print_string fmt "one-chunk-per-packet"
  | Combine -> Format.pp_print_string fmt "combine-chunks"
  | Reassemble -> Format.pp_print_string fmt "reassemble-then-pack"

let repack ~policy ~mtu chunks =
  match policy with
  | One_per_packet -> Packet.pack_one_per_packet ~mtu chunks
  | Combine -> Packet.pack ~mtu chunks
  | Reassemble -> Packet.pack ~mtu (Reassemble.coalesce chunks)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let repack_packet ~policy ~mtu b =
  let* chunks = Wire.decode_packet b in
  let* packets = repack ~policy ~mtu chunks in
  Ok (List.map Packet.encode packets)

let repack_stream ~policy ~mtu bs =
  let rec decode_all acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | b :: rest ->
        let* chunks = Wire.decode_packet b in
        decode_all (chunks :: acc) rest
  in
  let* chunks = decode_all [] bs in
  let* packets = repack ~policy ~mtu chunks in
  Ok (List.map Packet.encode packets)
