(** Chunk fragmentation — the paper's Appendix C algorithm.

    Splitting a chunk yields two chunks that are themselves completely
    self-describing: both keep the original TYPE, SIZE and all three
    IDs; the second part's SNs are advanced by the split length; only
    the part containing the original chunk's {e last} element keeps the
    ST bits (no ST bit is set in any earlier part).  The SIZE field
    guarantees that atomic processing units are never split.  Because
    the result of a split is again chunks, the receiver's view is
    identical no matter how many fragmentation stages occurred — the key
    to one-step reassembly (§3.1). *)

val split : Chunk.t -> elems:int -> (Chunk.t * Chunk.t, string) result
(** [split c ~elems] divides data chunk [c] after its first [elems]
    elements ([0 < elems < len]).  Control chunks are indivisible and
    terminators empty; both are rejected. *)

val split_exn : Chunk.t -> elems:int -> Chunk.t * Chunk.t
(** @raise Invalid_argument where {!split} returns [Error]. *)

val split_to_payload : Chunk.t -> max_payload:int -> (Chunk.t list, string) result
(** [split_to_payload c ~max_payload] repeatedly applies {!split} so
    every piece carries at most [max_payload] bytes of payload — the
    "empty chunks from one size of envelope into another" operation used
    when packing into a smaller MTU (§3.1, Fig. 3).  Fails if even a
    single element exceeds [max_payload] (the SIZE atomicity bound) or
    if [c] is an oversized control chunk (indivisible). *)

val extract : Chunk.t -> t_sn:int -> elems:int -> (Chunk.t, string) result
(** [extract c ~t_sn ~elems] is the sub-chunk covering T-level SNs
    [t_sn .. t_sn+elems-1] of data chunk [c] (which must contain that
    whole run).  Used for selective retransmission: because every chunk
    is self-describing, {e any} element run of a TPDU can be re-sent as
    a first-class chunk. *)

val shatter : Chunk.t -> (Chunk.t list, string) result
(** Split a data chunk into single-element chunks (the Appendix C
    remark: "the algorithm below can be repeated until each chunk
    carries only a single unit of data").  Mostly useful for tests and
    for the worst-case bench. *)
