(** Packets as envelopes for chunks (paper §2, Fig. 3).

    A packet is the atomic physical unit exchanged between protocol
    processors; it carries an integral number of chunks.  Because chunks
    allow disordering, {e how} chunks are placed into packets is
    irrelevant to the receiver — so packing is a pure, local decision:
    fill greedily, split any chunk that does not fit (Appendix C), and
    let unrelated chunks share an envelope. *)

type t = private { mtu : int; chunks : Chunk.t list }
(** A packed envelope; the chunks' total wire size never exceeds
    [mtu]. *)

val chunks : t -> Chunk.t list
(** The chunks packed into this envelope, in packing order. *)

val mtu : t -> int
(** The envelope's capacity in bytes. *)

val wire_used : t -> int
(** Bytes of the envelope actually occupied by chunk images (headers +
    payloads, excluding terminator/padding). *)

val efficiency : t -> float
(** Payload bytes / [mtu] — the bandwidth-utilisation figure used by the
    Fig. 4 comparison. *)

val pack : mtu:int -> Chunk.t list -> (t list, string) result
(** Greedy first-fit-in-order packing: walks the chunk list, splitting
    chunks at element boundaries whenever the current envelope's residual
    space cannot hold them whole.  Control chunks are indivisible: if one
    cannot fit in an {e empty} envelope, packing fails.  Every returned
    packet satisfies the MTU. *)

val pack_one_per_packet : mtu:int -> Chunk.t list -> (t list, string) result
(** Fig. 4 "method 1": one (possibly split) chunk per envelope — simple
    but bandwidth-inefficient; the baseline for the FIG4 experiment. *)

val encode : t -> bytes
(** Wire image of the envelope, padded to [mtu] with a terminator (see
    {!Wire.encode_packet}). *)

val encode_unpadded : t -> bytes
(** Wire image without padding (variable-size network). *)

val decode : mtu:int -> bytes -> (t, string) result
(** Parse an envelope received from a network with the given MTU. *)
