(** A chunk: a completely self-describing data unit — a header plus the
    run of data elements it labels (paper §2).

    Because the header contains everything needed to process the
    payload (TYPE, SIZE and a full [(ID, SN, ST)] tuple per framing
    level), a chunk can be processed by the entire protocol stack
    without waiting for any other chunk, in any arrival order.  Packets
    are mere envelopes carrying integral numbers of chunks. *)

type t = private { header : Header.t; payload : bytes }
(** The payload length always equals [Header.payload_bytes header]; use
    {!make} to construct.  The payload is owned by the chunk: callers
    must not mutate it after construction. *)

val make : Header.t -> bytes -> (t, string) result
(** [make h payload] checks that the payload length matches the header's
    announced [size]/[len]. *)

val make_exn : Header.t -> bytes -> t
(** Like {!make} but raises [Invalid_argument]; for internal call sites
    where the invariant is established by construction. *)

val data :
  size:int -> c:Ftuple.t -> t:Ftuple.t -> x:Ftuple.t -> bytes ->
  (t, string) result
(** Build a data chunk from a payload whose length must be a multiple of
    [size]; LEN is derived. *)

val control :
  kind:Ctype.t -> c:Ftuple.t -> t:Ftuple.t -> x:Ftuple.t -> bytes ->
  (t, string) result
(** Build an (indivisible) control chunk; [kind] must not be [Data]. *)

val terminator : t
(** The LEN = 0 end-of-valid-chunks marker. *)

val is_terminator : t -> bool
(** Recognise the padding terminator ({!terminator}): LEN = 0, so it
    labels no elements and ends packet parsing (paper §2.1). *)

val is_data : t -> bool
(** TYPE = data: the chunk carries PDU payload elements. *)

val is_control : t -> bool
(** TYPE is a control kind (ED code, ACK, signal, NACK — see
    {!Ctype}); control information is indivisible (paper §2). *)

val elements : t -> int
(** Number of data elements ([Header.len]; 1 for control chunks viewed
    as an indivisible unit). *)

val payload_bytes : t -> int

val element : t -> int -> bytes
(** [element c k] copies out the [k]-th data element ([size] bytes).

    @raise Invalid_argument on control chunks or out-of-range [k]. *)

val last_t_sn : t -> int
(** T-level SN of the chunk's last element ([t.sn + len - 1]); the
    element whose ST bits the header carries.

    @raise Invalid_argument on terminators. *)

val equal : t -> t -> bool
(** Structural equality: header fields and payload bytes. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering (header plus payload length), for
    diagnostics and test failure output. *)
