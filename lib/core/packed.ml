let tag_end = 0x00
let tag_full = 0x01
let tag_implied_ed = 0x02

let implied_ed_header prev ~payload_len =
  if not (Chunk.is_data prev) then None
  else begin
    let h = prev.Chunk.header in
    let start_csn = max 0 (h.Header.c.Ftuple.sn - h.Header.t.Ftuple.sn) in
    match
      Header.v ~ctype:Ctype.ed ~size:1 ~len:payload_len
        ~c:(Ftuple.v ~id:h.Header.c.Ftuple.id ~sn:start_csn ())
        ~t:(Ftuple.v ~id:h.Header.t.Ftuple.id ~sn:0 ())
        ~x:Ftuple.zero
    with
    | Ok hdr -> Some hdr
    | Error _ -> None
  end

let encode_packet ?capacity chunks =
  let buf = Buffer.create 256 in
  let prev = ref None in
  List.iter
    (fun chunk ->
      let elide =
        Chunk.payload_bytes chunk <= 0xFFFF
        &&
        match !prev with
        | Some p when Ctype.equal chunk.Chunk.header.Header.ctype Ctype.ed -> (
            match
              implied_ed_header p ~payload_len:(Chunk.payload_bytes chunk)
            with
            | Some implied -> Header.equal implied chunk.Chunk.header
            | None -> false)
        | Some _ | None -> false
      in
      if elide then begin
        Buffer.add_uint8 buf tag_implied_ed;
        Buffer.add_uint16_be buf (Chunk.payload_bytes chunk);
        Buffer.add_bytes buf chunk.Chunk.payload
      end
      else begin
        Buffer.add_uint8 buf tag_full;
        Wire.encode_chunk buf chunk
      end;
      prev := Some chunk)
    chunks;
  let used = Buffer.length buf in
  match capacity with
  | None -> Ok (Buffer.to_bytes buf)
  | Some cap when used > cap ->
      Error
        (Printf.sprintf "Packed.encode_packet: %d bytes exceed capacity %d"
           used cap)
  | Some cap ->
      (* a 0x00 tag ends the valid region; the rest is zero padding *)
      let b = Bytes.make cap '\000' in
      Buffer.blit buf 0 b 0 used;
      Ok b

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode_packet b =
  let n = Bytes.length b in
  let rec go off prev acc =
    if off >= n then Ok (List.rev acc)
    else begin
      let tag = Bytes.get_uint8 b off in
      if tag = tag_end then Ok (List.rev acc)
      else if tag = tag_full then
        let* chunk, off' = Wire.decode_chunk b (off + 1) in
        if Chunk.is_terminator chunk then Ok (List.rev acc)
        else go off' (Some chunk) (chunk :: acc)
      else if tag = tag_implied_ed then begin
        if n - off < 3 then Error "Packed.decode_packet: truncated tag"
        else begin
          let len = Bytes.get_uint16_be b (off + 1) in
          if n - off - 3 < len then
            Error "Packed.decode_packet: truncated implied ED payload"
          else begin
            match prev with
            | None -> Error "Packed.decode_packet: implied ED with no context"
            | Some p -> (
                match implied_ed_header p ~payload_len:len with
                | None ->
                    Error "Packed.decode_packet: context is not a data chunk"
                | Some hdr ->
                    let payload = Bytes.sub b (off + 3) len in
                    let* chunk = Chunk.make hdr payload in
                    go (off + 3 + len) (Some chunk) (chunk :: acc))
          end
        end
      end
      else Error "Packed.decode_packet: unknown tag"
    end
  in
  go 0 None []

let packed_size chunks =
  let prev = ref None in
  List.fold_left
    (fun acc chunk ->
      let elide =
        Chunk.payload_bytes chunk <= 0xFFFF
        &&
        match !prev with
        | Some p when Ctype.equal chunk.Chunk.header.Header.ctype Ctype.ed -> (
            match
              implied_ed_header p ~payload_len:(Chunk.payload_bytes chunk)
            with
            | Some implied -> Header.equal implied chunk.Chunk.header
            | None -> false)
        | Some _ | None -> false
      in
      prev := Some chunk;
      acc + if elide then 3 + Chunk.payload_bytes chunk else 1 + Wire.chunk_size chunk)
    0 chunks
