type t = {
  ctype : Ctype.t;
  size : int;
  len : int;
  c : Ftuple.t;
  t : Ftuple.t;
  x : Ftuple.t;
}

let max_size = 0xFFFF
let max_len = 0x3FFF_FFFF

let v ~ctype ~size ~len ~c ~t ~x =
  if len < 0 || len > max_len then Error "Header.v: len out of range"
  else if Ctype.is_data ctype && len > 0 && (size < 1 || size > max_size)
  then Error "Header.v: size out of range for data chunk"
  else if size < 0 || size > max_size then Error "Header.v: size out of range"
  else Ok { ctype; size; len; c; t; x }

let terminator =
  {
    ctype = Ctype.data;
    size = 0;
    len = 0;
    c = Ftuple.zero;
    t = Ftuple.zero;
    x = Ftuple.zero;
  }

let is_terminator h = h.len = 0

let payload_bytes h =
  if is_terminator h then 0
  else if Ctype.is_data h.ctype then h.size * h.len
  else h.len

let same_labels a b =
  Ctype.equal a.ctype b.ctype
  && a.size = b.size
  && a.c.Ftuple.id = b.c.Ftuple.id
  && a.t.Ftuple.id = b.t.Ftuple.id
  && a.x.Ftuple.id = b.x.Ftuple.id

let equal a b =
  Ctype.equal a.ctype b.ctype
  && a.size = b.size
  && a.len = b.len
  && Ftuple.equal a.c b.c
  && Ftuple.equal a.t b.t
  && Ftuple.equal a.x b.x

let pp fmt h =
  Format.fprintf fmt "@[<h>[%a size=%d len=%d C=%a T=%a X=%a]@]" Ctype.pp
    h.ctype h.size h.len Ftuple.pp h.c Ftuple.pp h.t Ftuple.pp h.x
