let m_splits = Obs.Metrics.counter "core_fragment_splits_total"

let split c ~elems =
  let h = c.Chunk.header in
  if Chunk.is_terminator c then Error "Fragment.split: terminator"
  else if Chunk.is_control c then
    Error "Fragment.split: control chunks are indivisible"
  else if elems <= 0 || elems >= h.Header.len then
    Error "Fragment.split: split point out of range"
  else begin
    let size = h.Header.size in
    let bytes_a = elems * size in
    (* Part A: same labels, SNs unchanged, every ST bit cleared. *)
    let ha =
      {
        h with
        Header.len = elems;
        c = Ftuple.with_st h.Header.c false;
        t = Ftuple.with_st h.Header.t false;
        x = Ftuple.with_st h.Header.x false;
      }
    in
    (* Part B: SNs advanced by [elems] at every level; keeps the original
       ST bits because it contains the original chunk's last element. *)
    let hb =
      {
        h with
        Header.len = h.Header.len - elems;
        c = Ftuple.with_st (Ftuple.advance h.Header.c elems) h.Header.c.Ftuple.st;
        t = Ftuple.with_st (Ftuple.advance h.Header.t elems) h.Header.t.Ftuple.st;
        x = Ftuple.with_st (Ftuple.advance h.Header.x elems) h.Header.x.Ftuple.st;
      }
    in
    let a = Chunk.make_exn ha (Bytes.sub c.Chunk.payload 0 bytes_a) in
    let b =
      Chunk.make_exn hb
        (Bytes.sub c.Chunk.payload bytes_a (Bytes.length c.Chunk.payload - bytes_a))
    in
    if Obs.enabled then begin
      Obs.Metrics.incr m_splits;
      if Obs.Trace.active () then
        Obs.Trace.record
          (Obs.Trace.Frag
             {
               tpdu = hb.Header.t.Ftuple.id;
               t_sn = hb.Header.t.Ftuple.sn;
               elems = hb.Header.len;
             })
    end;
    Ok (a, b)
  end

let split_exn c ~elems =
  match split c ~elems with
  | Ok pair -> pair
  | Error e -> invalid_arg e

let split_to_payload c ~max_payload =
  if max_payload <= 0 then Error "Fragment.split_to_payload: max_payload <= 0"
  else if Chunk.is_terminator c then Ok [ c ]
  else if Chunk.payload_bytes c <= max_payload then Ok [ c ]
  else if Chunk.is_control c then
    Error "Fragment.split_to_payload: oversized control chunk is indivisible"
  else begin
    let size = c.Chunk.header.Header.size in
    let per = max_payload / size in
    if per < 1 then
      Error "Fragment.split_to_payload: element larger than max_payload"
    else begin
      let rec go c acc =
        if Chunk.payload_bytes c <= max_payload then List.rev (c :: acc)
        else
          let a, b = split_exn c ~elems:per in
          go b (a :: acc)
      in
      Ok (go c [])
    end
  end

let extract c ~t_sn ~elems =
  let h = c.Chunk.header in
  if not (Chunk.is_data c) then Error "Fragment.extract: not a data chunk"
  else begin
    let first = h.Header.t.Ftuple.sn in
    let off = t_sn - first in
    if elems < 1 || off < 0 || off + elems > h.Header.len then
      Error "Fragment.extract: run not contained in the chunk"
    else begin
      (* drop the prefix, then keep the first [elems] of the rest *)
      let tail =
        if off = 0 then Ok c
        else match split c ~elems:off with Ok (_, b) -> Ok b | Error _ as e -> e
      in
      match tail with
      | Error _ as e -> e
      | Ok tail ->
          if tail.Chunk.header.Header.len = elems then Ok tail
          else begin
            match split tail ~elems with
            | Ok (a, _) -> Ok a
            | Error _ as e -> e
          end
    end
  end

let shatter c =
  if Chunk.is_control c then Error "Fragment.shatter: control chunk"
  else if Chunk.is_terminator c then Ok [ c ]
  else split_to_payload c ~max_payload:c.Chunk.header.Header.size
