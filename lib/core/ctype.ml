type t = Data | Control of int

let data = Data
let ed = Control 1
let ack = Control 2
let signal = Control 3
let nack = Control 4

let is_data = function Data -> true | Control _ -> false
let is_control = function Data -> false | Control _ -> true

let code = function Data -> 0 | Control k -> k

let of_code k =
  if k = 0 then Ok Data
  else if k >= 1 && k <= 0xFF then Ok (Control k)
  else Error (Printf.sprintf "Ctype.of_code: invalid code %d" k)

let equal a b =
  match (a, b) with
  | Data, Data -> true
  | Control x, Control y -> x = y
  | Data, Control _ | Control _, Data -> false

let pp fmt = function
  | Data -> Format.pp_print_string fmt "D"
  | Control 1 -> Format.pp_print_string fmt "ED"
  | Control 2 -> Format.pp_print_string fmt "ACK"
  | Control 3 -> Format.pp_print_string fmt "SIG"
  | Control 4 -> Format.pp_print_string fmt "NACK"
  | Control k -> Format.fprintf fmt "CTL%d" k
