let mergeable a b =
  let ha = a.Chunk.header and hb = b.Chunk.header in
  Chunk.is_data a && Chunk.is_data b
  && Header.same_labels ha hb
  && Ftuple.follows ha.Header.c ~len:ha.Header.len hb.Header.c
  && Ftuple.follows ha.Header.t ~len:ha.Header.len hb.Header.t
  && Ftuple.follows ha.Header.x ~len:ha.Header.len hb.Header.x

let merge a b =
  if not (mergeable a b) then Error "Reassemble.merge: chunks not eligible"
  else begin
    let ha = a.Chunk.header and hb = b.Chunk.header in
    (* Keeps A's SNs (the run start) and B's ST bits (the run end). *)
    let h =
      {
        ha with
        Header.len = ha.Header.len + hb.Header.len;
        c = Ftuple.with_st ha.Header.c hb.Header.c.Ftuple.st;
        t = Ftuple.with_st ha.Header.t hb.Header.t.Ftuple.st;
        x = Ftuple.with_st ha.Header.x hb.Header.x.Ftuple.st;
      }
    in
    Ok (Chunk.make_exn h (Bytes.cat a.Chunk.payload b.Chunk.payload))
  end

let merge_exn a b =
  match merge a b with
  | Ok c -> c
  | Error e -> invalid_arg e

(* Sort key grouping chunks of the same run together, ordered by C-level
   SN within a group.  C-level SN strictly increases along a run (all
   levels advance in lock-step), so adjacent-in-sorted-order is the only
   candidate pair for merging. *)
let run_key c =
  let h = c.Chunk.header in
  ( Ctype.code h.Header.ctype,
    h.Header.size,
    h.Header.c.Ftuple.id,
    h.Header.t.Ftuple.id,
    h.Header.x.Ftuple.id,
    h.Header.c.Ftuple.sn )

let coalesce chunks =
  let chunks = List.filter (fun c -> not (Chunk.is_terminator c)) chunks in
  (* Remember first-appearance order of each (future) merged run so the
     output is stable for callers that care about presentation order. *)
  let order = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      let k = run_key c in
      if not (Hashtbl.mem order k) then Hashtbl.add order k i)
    chunks;
  let sorted = List.stable_sort (fun a b -> compare (run_key a) (run_key b)) chunks in
  let rec fuse = function
    | a :: b :: rest when mergeable a b -> fuse (merge_exn a b :: rest)
    | a :: rest -> a :: fuse rest
    | [] -> []
  in
  let merged = fuse sorted in
  let indexed =
    List.map
      (fun c ->
        let k = run_key c in
        let i = try Hashtbl.find order k with Not_found -> max_int in
        (i, c))
      merged
  in
  List.stable_sort (fun (i, _) (j, _) -> Int.compare i j) indexed
  |> List.map snd

module Pool = struct
  (* Maximal chunks keyed by run identity; a simple sorted association
     list per run group keeps neighbour lookup easy.  The pool is small
     in practice (bounded by the disorder window), so a Hashtbl of the
     non-SN part of the key to a sorted list of chunks suffices. *)

  type group_key = int * int * int * int * int
  (* (ctype, size, c.id, t.id, x.id) *)

  type t = { groups : (group_key, Chunk.t list ref) Hashtbl.t }

  let group_key c =
    let h = c.Chunk.header in
    ( Ctype.code h.Header.ctype,
      h.Header.size,
      h.Header.c.Ftuple.id,
      h.Header.t.Ftuple.id,
      h.Header.x.Ftuple.id )

  let create () = { groups = Hashtbl.create 16 }

  let c_sn c = c.Chunk.header.Header.c.Ftuple.sn

  let insert pool chunk =
    if not (Chunk.is_terminator chunk) then begin
      let key = group_key chunk in
      let cell =
        match Hashtbl.find_opt pool.groups key with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add pool.groups key r;
            r
      in
      (* Insert in ascending C.SN order, merging with the predecessor
         and/or successor when eligible; duplicates and overlaps of
         already-held runs are dropped (duplicate rejection is cheap
         here because runs are sorted). *)
      let c_len c = c.Chunk.header.Header.len in
      let overlaps held =
        c_sn chunk < c_sn held + c_len held
        && c_sn held < c_sn chunk + c_len chunk
      in
      let rec place = function
        | [] -> [ chunk ]
        | hd :: tl when mergeable hd chunk -> (
            let fused = merge_exn hd chunk in
            match tl with
            | nxt :: rest when mergeable fused nxt ->
                merge_exn fused nxt :: rest
            | _ -> fused :: tl)
        | hd :: _ as all when overlaps hd -> all (* duplicate: drop *)
        | hd :: tl when c_sn chunk < c_sn hd ->
            if mergeable chunk hd then merge_exn chunk hd :: tl
            else chunk :: hd :: tl
        | hd :: tl -> hd :: place tl
      in
      cell := place !cell
    end

  let held pool =
    Hashtbl.fold (fun _ cell acc -> !cell @ acc) pool.groups []
    |> List.sort (fun a b -> compare (run_key a) (run_key b))

  let is_complete_tpdu c =
    Chunk.is_data c
    && c.Chunk.header.Header.t.Ftuple.sn = 0
    && c.Chunk.header.Header.t.Ftuple.st

  let take_complete_tpdus pool =
    let out = ref [] in
    Hashtbl.iter
      (fun _ cell ->
        let complete, rest = List.partition is_complete_tpdu !cell in
        out := complete @ !out;
        cell := rest)
      pool.groups;
    List.sort (fun a b -> compare (run_key a) (run_key b)) !out

  let size pool =
    Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) pool.groups 0
end
