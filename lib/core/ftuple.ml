type t = { id : int; sn : int; st : bool }

let max_id = 0xFFFF_FFFF

let v ?(st = false) ~id ~sn () =
  if id < 0 || id > max_id then invalid_arg "Ftuple.v: id out of range";
  if sn < 0 then invalid_arg "Ftuple.v: negative sn";
  { id; sn; st }

let zero = { id = 0; sn = 0; st = false }

let advance u n =
  if n < 0 then invalid_arg "Ftuple.advance: negative step";
  { u with sn = u.sn + n; st = false }

let with_st u st = { u with st }

let follows a ~len b = a.id = b.id && a.sn + len = b.sn

let equal a b = a.id = b.id && a.sn = b.sn && a.st = b.st

let compare a b =
  match Int.compare a.id b.id with
  | 0 -> (
      match Int.compare a.sn b.sn with
      | 0 -> Bool.compare a.st b.st
      | c -> c)
  | c -> c

let pp fmt u =
  Format.fprintf fmt "(id=%d, sn=%d, st=%d)" u.id u.sn (if u.st then 1 else 0)
