(** Virtual reassembly (paper §3.3): tracking received fragments to know
    when all pieces of a PDU have arrived — without physically
    reassembling anything.

    With immediate packet processing, virtual-reassembly completion is
    the signal that a PDU's incremental computations (checksum,
    placement) are finished; it also rejects duplicate data, which would
    otherwise corrupt an incremental checksum and could let a corrupted
    duplicate overwrite good data.  This is the software equivalent of
    the VLSI reassembly unit of [MCAU 93b]. *)

type insert_result =
  | Fresh  (** new data; process it *)
  | Duplicate  (** exact or subsumed re-receipt; drop it *)
  | Overlap
      (** partially overlaps previously received data with different
          extents — never produced by a correct sender/network
          (retransmissions reuse identical labels), so it indicates
          corruption; drop and flag *)
  | Inconsistent
      (** contradicts the PDU's known end: an element beyond a seen ST,
          or a second, different ST position *)

(** {1 Single-PDU tracker} *)

type t
(** Gap tracker for one PDU: the set of received [(sn, len)] runs plus
    the PDU end once an ST has been seen — reassembly bookkeeping
    without reassembly buffers (paper §3.1). *)

val create : unit -> t
(** An empty tracker: nothing received, end unknown. *)

val insert : t -> sn:int -> len:int -> st:bool -> insert_result
(** Record a fragment covering elements [sn .. sn+len-1]; [st] means the
    fragment contains the PDU's last element.  Never raises: a malformed
    span ([sn < 0], [len <= 0], or [sn + len] overflowing) can only come
    from a corrupted label and is reported as [Inconsistent]. *)

val insert_new : t -> sn:int -> len:int -> st:bool ->
  ((int * int) list, [ `Inconsistent ]) result
(** Like {!insert}, but tolerant of partial overlap: a retransmission
    may have been fragmented differently in the network, so a chunk can
    cover both seen and unseen elements.  Records the span and returns
    the {e fresh} sub-runs as [(sn, len)] pairs (empty when everything
    was a duplicate) so the caller processes new data exactly once —
    the property the incremental checksum needs.  [Error `Inconsistent]
    is as for {!insert}, including malformed spans (never raises). *)

val set_total : t -> int -> (unit, [ `Inconsistent ]) result
(** Announce the PDU's total element count out of band (e.g. from its
    ED control chunk), as if an ST had been seen at element
    [total - 1]; lets gap reports include the missing tail before any
    ST-bearing fragment arrives.  Fails if [total < 1] or if it
    contradicts received data or a previously known end. *)

val complete : t -> bool
(** The PDU end is known (some ST arrived) and [0 .. last] is fully
    covered. *)

val total : t -> int option
(** Number of elements in the PDU, once the ST has been seen. *)

val received_elems : t -> int
(** Elements received so far (duplicates counted once). *)

val missing : t -> (int * int) list
(** Current gaps as [(sn, len)] runs, in ascending order.  If the end is
    unknown, the list describes only internal gaps. *)

val spans : t -> (int * int) list
(** Received runs as [(sn, len)], ascending. *)

(** {1 Many-PDU table}

    Tracks every in-flight PDU of one level (keyed by ID), driving
    per-TPDU completion for the error-detection verifier and the
    transport's acknowledgements. *)

(** A collection of {!t} trackers keyed by PDU ID. *)
module Table : sig
  type tracker = t
  type t

  val create : unit -> t

  val insert : t -> id:int -> sn:int -> len:int -> st:bool -> insert_result
  (** Record a fragment of PDU [id], creating its tracker on first
      sight. *)

  val insert_chunk : t -> Chunk.t -> insert_result
  (** Tracks the T level of a data chunk. *)

  val find : t -> id:int -> tracker option
  (** The tracker for PDU [id], if any fragment has been seen. *)

  val complete : t -> id:int -> bool
  (** Whether PDU [id] is fully received ([false] if unknown). *)

  val drop : t -> id:int -> unit
  (** Forget PDU [id] (after delivery or eviction). *)

  val in_flight : t -> int
  (** Number of PDUs currently tracked. *)

  val completed_ids : t -> int list
  (** IDs whose PDUs are currently complete (ascending). *)
end
