type t = Critical | Normal | Sheddable of int

let normalize = function
  | Sheddable l when l < 1 -> Sheddable 1
  | t -> t

let sheddable = function Sheddable _ -> true | Critical | Normal -> false
let rank = function Critical | Normal -> 0 | Sheddable l -> max 1 l
let weight = function Critical -> 4 | Normal -> 2 | Sheddable _ -> 1

let compare a b =
  match (a, b) with
  | Critical, Critical | Normal, Normal -> 0
  | Critical, _ -> -1
  | _, Critical -> 1
  | Normal, _ -> -1
  | _, Normal -> 1
  | Sheddable x, Sheddable y -> Int.compare (max 1 x) (max 1 y)

let equal a b = compare a b = 0

let to_string = function
  | Critical -> "critical"
  | Normal -> "normal"
  | Sheddable l -> Printf.sprintf "shed:%d" (max 1 l)

let of_string s =
  match s with
  | "critical" -> Some Critical
  | "normal" -> Some Normal
  | _ -> (
      match String.index_opt s ':' with
      | Some 4 when String.sub s 0 4 = "shed" -> (
          match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
          | Some l when l >= 1 -> Some (Sheddable l)
          | _ -> None)
      | _ -> None)
