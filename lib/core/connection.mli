(** Connections and their signalling (paper §2 and [FELD 90]).

    A connection ID refers to a single, {e unmultiplexed}
    application-to-application conversation; the whole conversation is
    treated as one large PDU whose SNs may be reused over time, so the
    {e beginning} of a connection is indicated with a signalling message
    rather than an SN of zero, and the C.ST bit (or an equivalent
    signal) ends it.  Signals travel as [Ctype.signal] control chunks
    and therefore share packets with data like any other chunk
    (Appendix A's piggybacking-for-free observation). *)

type signal =
  | Open of { first_csn : int }
      (** connection establishment, announcing the starting C.SN (which
          need not be 0 — SNs are reused over time) *)
  | Close
      (** orderly tear-down; an alternative to the in-band C.ST bit *)
  | Resync of { c_sn : int }
      (** re-announce the next C.SN (used by receivers that regenerate
          SNs implicitly, Appendix A) *)
  | Abort_tpdu of { t_id : int }
      (** the sender has abandoned TPDU [t_id] (give-up after repeated
          retransmission failure): the receiver should evict any partial
          state it holds for it instead of waiting forever *)
  | Shed_tpdu of { t_id : int; first_elem : int; elems : int }
      (** the sender has {e deliberately} abandoned sheddable TPDU
          [t_id] under congestion (partial reliability, see
          {!Significance}): the receiver should reclaim partial state
          like an abort, but additionally count the element span
          [\[first_elem, first_elem + elems)] as covered-by-shedding so
          the stream can still complete without those bytes *)

val signal_chunk : conn_id:int -> signal -> Chunk.t
(** Encode a signal as a control chunk of the connection. *)

val parse_signal : Chunk.t -> (int * signal, string) result
(** Decode a signalling chunk into (connection id, signal). *)

(** {1 Receiver-side connection table} *)

type state = Established of { first_csn : int } | Closed

type t
(** A table of known connections, keyed by C.ID. *)

val create : unit -> t

val on_chunk : t -> Chunk.t ->
  [ `Signal of int * signal | `Data_for of int | `Unknown_connection of int
  | `Ignored ]
(** Route one chunk: signals update the table; data chunks are accepted
    only for established connections ([`Unknown_connection] models the
    paper's requirement that establishment precedes data). *)

val state : t -> conn_id:int -> state option
(** Current state of one connection; [None] if the table has never seen
    an [Open] for it. *)

val established : t -> int list
(** Currently established connection ids (ascending). *)
