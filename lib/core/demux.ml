type t = {
  handlers : (int, Chunk.t -> unit) Hashtbl.t;
  default : Chunk.t -> unit;
  mutable routed : int;
  mutable unknown : int;
}

let create ?(default = fun _ -> ()) () =
  { handlers = Hashtbl.create 8; default; routed = 0; unknown = 0 }

let register d ctype handler =
  Hashtbl.replace d.handlers (Ctype.code ctype) handler

let on_chunk d chunk =
  if not (Chunk.is_terminator chunk) then begin
    d.routed <- d.routed + 1;
    let code = Ctype.code chunk.Chunk.header.Header.ctype in
    match Hashtbl.find_opt d.handlers code with
    | Some handler -> handler chunk
    | None ->
        d.unknown <- d.unknown + 1;
        d.default chunk
  end

let on_packet d b =
  match Wire.decode_packet b with
  | Error _ as e -> e
  | Ok chunks ->
      List.iter (on_chunk d) chunks;
      Ok (List.length chunks)

let routed d = d.routed
let unknown d = d.unknown
