type insert_result = Fresh | Duplicate | Overlap | Inconsistent

(* Received element runs as a sorted list of disjoint, non-adjacent
   (start, len) intervals.  The disorder window keeps this short in
   practice, so list operations are fine. *)
type t = {
  mutable runs : (int * int) list;
  mutable last_sn : int option;  (* SN of the final element, once ST seen *)
}

let create () = { runs = []; last_sn = None }

let covered runs sn len =
  List.exists (fun (s, l) -> s <= sn && sn + len <= s + l) runs

let intersects runs sn len =
  List.exists (fun (s, l) -> sn < s + l && s < sn + len) runs

let add_run runs sn len =
  (* Insert and coalesce with adjacent/overlapping runs. *)
  let rec go = function
    | [] -> [ (sn, len) ]
    | (s, l) :: rest when s + l < sn -> (s, l) :: go rest
    | (s, l) :: rest when sn + len < s -> (sn, len) :: (s, l) :: rest
    | (s, l) :: rest ->
        (* touching or overlapping: fuse and keep going *)
        let lo = min s sn and hi = max (s + l) (sn + len) in
        let fused = (lo, hi - lo) in
        let sn, len = fused in
        let rec absorb sn len = function
          | (s, l) :: rest when s <= sn + len ->
              absorb sn (max (sn + len) (s + l) - sn) rest
          | rest -> (sn, len) :: rest
        in
        absorb sn len rest
  in
  go runs

(* A span is malformed when it is degenerate or when [sn + len] wraps
   past [max_int] (possible for labels decoded from 64-bit wire fields);
   either way it can only come from corruption, so it is reported as
   [Inconsistent] rather than raised on. *)
let bad_span ~sn ~len = sn < 0 || len <= 0 || sn > max_int - len

let insert tr ~sn ~len ~st =
  if bad_span ~sn ~len then Inconsistent
  else begin
  let last = sn + len - 1 in
  let max_seen =
    List.fold_left (fun acc (s, l) -> max acc (s + l - 1)) (-1) tr.runs
  in
  let end_conflict =
    match tr.last_sn with
    | Some e when st && e <> last -> true (* two different ends *)
    | Some e when last > e -> true (* data beyond the known end *)
    | None when st && max_seen > last -> true (* end before seen data *)
    | _ -> false
  in
  if end_conflict then Inconsistent
  else if covered tr.runs sn len then begin
    if st then tr.last_sn <- Some last;
    Duplicate
  end
  else if intersects tr.runs sn len then Overlap
  else begin
    tr.runs <- add_run tr.runs sn len;
    if st then tr.last_sn <- Some last;
    Fresh
  end
  end

let insert_new tr ~sn ~len ~st =
  if bad_span ~sn ~len then Error `Inconsistent
  else begin
  let last = sn + len - 1 in
  let max_seen =
    List.fold_left (fun acc (s, l) -> max acc (s + l - 1)) (-1) tr.runs
  in
  let end_conflict =
    match tr.last_sn with
    | Some e when st && e <> last -> true
    | Some e when last > e -> true
    | None when st && max_seen > last -> true
    | _ -> false
  in
  if end_conflict then Error `Inconsistent
  else begin
    (* Fresh parts = [sn, sn+len) minus every existing run. *)
    let rec subtract lo hi runs acc =
      if lo >= hi then List.rev acc
      else
        match runs with
        | [] -> List.rev ((lo, hi - lo) :: acc)
        | (s, l) :: rest ->
            if s + l <= lo then subtract lo hi rest acc
            else if s >= hi then List.rev ((lo, hi - lo) :: acc)
            else if s <= lo then subtract (max lo (s + l)) hi rest acc
            else subtract (s + l) hi rest ((lo, s - lo) :: acc)
    in
    let fresh = subtract sn (sn + len) tr.runs [] in
    tr.runs <- add_run tr.runs sn len;
    if st then tr.last_sn <- Some last;
    Ok fresh
  end
  end

let set_total tr total =
  if total < 1 then Error `Inconsistent
  else begin
  let last = total - 1 in
  let max_seen =
    List.fold_left (fun acc (s, l) -> max acc (s + l - 1)) (-1) tr.runs
  in
  match tr.last_sn with
  | Some e when e <> last -> Error `Inconsistent
  | Some _ -> Ok ()
  | None ->
      if max_seen > last then Error `Inconsistent
      else begin
        tr.last_sn <- Some last;
        Ok ()
      end
  end

let total tr = Option.map (fun e -> e + 1) tr.last_sn

let received_elems tr = List.fold_left (fun acc (_, l) -> acc + l) 0 tr.runs

let complete tr =
  match tr.last_sn with
  | None -> false
  | Some e -> ( match tr.runs with [ (0, l) ] -> l = e + 1 | _ -> false)

let spans tr = tr.runs

let missing tr =
  let stop = match tr.last_sn with Some e -> e + 1 | None -> max_int in
  let rec gaps expect = function
    | [] -> if stop <> max_int && expect < stop then [ (expect, stop - expect) ] else []
    | (s, l) :: rest ->
        if s > expect then (expect, s - expect) :: gaps (s + l) rest
        else gaps (s + l) rest
  in
  gaps 0 tr.runs

module Table = struct
  type tracker = t
  type nonrec t = (int, tracker) Hashtbl.t

  (* Capture single-PDU operations before they are shadowed below. *)
  let new_tracker : unit -> tracker = create
  let tracker_complete : tracker -> bool = complete

  let create () : t = Hashtbl.create 32

  let tracker tbl id =
    match Hashtbl.find_opt tbl id with
    | Some tr -> tr
    | None ->
        let tr = new_tracker () in
        Hashtbl.add tbl id tr;
        tr

  let insert tbl ~id ~sn ~len ~st = insert (tracker tbl id) ~sn ~len ~st

  let insert_chunk tbl chunk =
    let h = chunk.Chunk.header in
    insert tbl ~id:h.Header.t.Ftuple.id ~sn:h.Header.t.Ftuple.sn
      ~len:h.Header.len ~st:h.Header.t.Ftuple.st

  let find tbl ~id = Hashtbl.find_opt tbl id

  let complete tbl ~id =
    match Hashtbl.find_opt tbl id with
    | Some tr -> complete tr
    | None -> false

  let drop tbl ~id = Hashtbl.remove tbl id

  let in_flight tbl = Hashtbl.length tbl

  let completed_ids tbl =
    Hashtbl.fold
      (fun id tr acc -> if tracker_complete tr then id :: acc else acc)
      tbl []
    |> List.sort Int.compare
end
