(** TYPE-based chunk demultiplexing (Appendix A): "chunks simplify
    distributed protocol processing because they can be demultiplexed
    via the TYPE field and routed to the appropriate processing units.
    Individual processing units are responsible for knowing which chunk
    (ID, SN, ST) tuple to use."

    A demux owns a handler per chunk TYPE (plus a default); feeding it a
    packet routes every chunk in one table lookup — the "single context
    retrieval per chunk" property.  Handlers are independent units, so a
    hardware implementation could run them in parallel; here they model
    the software dispatch cost measured in CLM-DEMUX. *)

type t
(** A demultiplexer: a TYPE-indexed handler table plus routing
    counters. *)

val create : ?default:(Chunk.t -> unit) -> unit -> t
(** [default] sees chunks of unregistered TYPEs (dropped silently by
    default). *)

val register : t -> Ctype.t -> (Chunk.t -> unit) -> unit
(** Install the processing unit for one TYPE (replaces any previous
    one).

    @raise Invalid_argument when registering for a terminator's code. *)

val on_chunk : t -> Chunk.t -> unit
(** Route one chunk (terminators are swallowed). *)

val on_packet : t -> bytes -> (int, string) result
(** Decode an envelope and route every chunk; returns the number
    routed. *)

val routed : t -> int
(** Chunks routed so far. *)

val unknown : t -> int
(** Chunks that fell to the default handler. *)
