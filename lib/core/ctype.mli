(** The chunk TYPE field (paper §2).

    The TYPE indicates how a piece of a PDU is to be processed.  The
    basic PDU contains pieces of type {e data} and one or more kinds of
    {e control}; control information is indivisible and associated with
    exactly one PDU level (e.g. the error-detection code belongs to the
    TPDU).  The appendix-A observation that chunks can be demultiplexed
    to processing units purely on TYPE is why the codes are small
    integers. *)

type t =
  | Data  (** PDU payload. *)
  | Control of int
      (** A kind of control information; the argument is the wire code
          (>= 1).  Well-known kinds are named below. *)

val data : t

val ed : t
(** Error-detection code for a TPDU ([Control 1]); its payload is the
    WSC-2 parity pair. *)

val ack : t
(** Acknowledgement control information ([Control 2]), used by the
    transport built on chunks. *)

val signal : t
(** Connection signalling ([Control 3]): connection establishment and
    tear-down (the paper replaces "SN = 0 marks the start" with explicit
    signalling for the connection PDU). *)

val nack : t
(** Selective-retransmission request ([Control 4]): the element runs a
    TPDU is still missing, straight from virtual reassembly's gap
    report.  Because chunks are self-describing, the sender can re-send
    exactly those runs as first-class chunks — a consequence of the
    labelling the paper's conventional comparators cannot get. *)

val is_data : t -> bool
(** [true] exactly for {!data}. *)

val is_control : t -> bool
(** [true] for any control kind, well-known or not. *)

val code : t -> int
(** Wire code: [0] for data, the control kind otherwise. *)

val of_code : int -> (t, string) result
(** Inverse of {!code}; rejects negative and oversized codes. *)

val equal : t -> t -> bool
(** Equality on the wire code. *)

val pp : Format.formatter -> t -> unit
(** Prints the well-known name (["data"], ["ed"], ...) or
    ["control:N"] for unnamed kinds. *)
