type t = {
  ctype : Ctype.t;
  size : int;
  levels : Ftuple.t array;
  len : int;
  payload : bytes;
}

let make ~ctype ~size ~levels payload =
  let n = Bytes.length payload in
  if Array.length levels < 1 then
    Error "Multiframe.make: at least one framing level required"
  else if Array.length levels > 255 then
    Error "Multiframe.make: too many levels"
  else if Ctype.is_data ctype then
    if size < 1 || size > 0xFFFF then Error "Multiframe.make: bad size"
    else if n = 0 || n mod size <> 0 then
      Error "Multiframe.make: payload not a positive multiple of size"
    else Ok { ctype; size; levels; len = n / size; payload }
  else Ok { ctype; size = 1; levels; len = n; payload }

let levels c = Array.length c.levels
let elements c = if Ctype.is_data c.ctype then c.len else 1

let is_data c = Ctype.is_data c.ctype

let split c ~elems =
  if not (is_data c) then Error "Multiframe.split: control is indivisible"
  else if elems <= 0 || elems >= c.len then
    Error "Multiframe.split: split point out of range"
  else begin
    let bytes_a = elems * c.size in
    let a =
      {
        c with
        len = elems;
        levels = Array.map (fun u -> Ftuple.with_st u false) c.levels;
        payload = Bytes.sub c.payload 0 bytes_a;
      }
    in
    let b =
      {
        c with
        len = c.len - elems;
        levels =
          Array.map
            (fun u -> Ftuple.with_st (Ftuple.advance u elems) u.Ftuple.st)
            c.levels;
        payload =
          Bytes.sub c.payload bytes_a (Bytes.length c.payload - bytes_a);
      }
    in
    Ok (a, b)
  end

let mergeable a b =
  is_data a && is_data b
  && Ctype.equal a.ctype b.ctype
  && a.size = b.size
  && Array.length a.levels = Array.length b.levels
  && Array.for_all2
       (fun (ua : Ftuple.t) ub ->
         ua.Ftuple.id = ub.Ftuple.id && Ftuple.follows ua ~len:a.len ub)
       a.levels b.levels

let merge a b =
  if not (mergeable a b) then Error "Multiframe.merge: not eligible"
  else
    Ok
      {
        a with
        len = a.len + b.len;
        levels =
          Array.map2
            (fun (ua : Ftuple.t) (ub : Ftuple.t) ->
              Ftuple.with_st ua ub.Ftuple.st)
            a.levels b.levels;
        payload = Bytes.cat a.payload b.payload;
      }

let run_key c =
  ( Ctype.code c.ctype,
    c.size,
    Array.to_list (Array.map (fun (u : Ftuple.t) -> u.Ftuple.id) c.levels),
    (c.levels.(0)).Ftuple.sn )

let coalesce chunks =
  let sorted =
    List.stable_sort (fun a b -> compare (run_key a) (run_key b)) chunks
  in
  let rec fuse = function
    | a :: b :: rest when mergeable a b -> (
        match merge a b with
        | Ok m -> fuse (m :: rest)
        | Error _ -> a :: fuse (b :: rest))
    | a :: rest -> a :: fuse rest
    | [] -> []
  in
  fuse sorted

let encode buf c =
  Buffer.add_uint8 buf (Ctype.code c.ctype);
  Buffer.add_uint8 buf (Array.length c.levels);
  Buffer.add_uint16_be buf c.size;
  Buffer.add_int32_be buf (Int32.of_int c.len);
  Array.iter
    (fun (u : Ftuple.t) ->
      Buffer.add_int32_be buf (Int32.of_int u.Ftuple.id);
      Buffer.add_int64_be buf (Int64.of_int u.Ftuple.sn);
      Buffer.add_uint8 buf (if u.Ftuple.st then 1 else 0))
    c.levels;
  Buffer.add_bytes buf c.payload

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode b off =
  if Bytes.length b - off < 8 then Error "Multiframe.decode: truncated"
  else begin
    let* ctype = Ctype.of_code (Bytes.get_uint8 b off) in
    let nlevels = Bytes.get_uint8 b (off + 1) in
    let size = Bytes.get_uint16_be b (off + 2) in
    let len = Int32.to_int (Bytes.get_int32_be b (off + 4)) land 0xFFFF_FFFF in
    if nlevels < 1 then Error "Multiframe.decode: zero levels"
    else if Bytes.length b - off - 8 < 13 * nlevels then
      Error "Multiframe.decode: truncated levels"
    else begin
      let err = ref None in
      let levels =
        Array.init nlevels (fun k ->
            let o = off + 8 + (13 * k) in
            let id = Int32.to_int (Bytes.get_int32_be b o) land 0xFFFF_FFFF in
            let sn = Int64.to_int (Bytes.get_int64_be b (o + 4)) in
            let stb = Bytes.get_uint8 b (o + 12) in
            if sn < 0 || stb > 1 then begin
              err := Some "Multiframe.decode: bad tuple";
              Ftuple.zero
            end
            else Ftuple.v ~st:(stb = 1) ~id ~sn ())
      in
      match !err with
      | Some e -> Error e
      | None ->
          let nbytes = if Ctype.is_data ctype then size * len else len in
          let payload_off = off + 8 + (13 * nlevels) in
          if Bytes.length b - payload_off < nbytes then
            Error "Multiframe.decode: truncated payload"
          else begin
            let payload = Bytes.sub b payload_off nbytes in
            let* c = make ~ctype ~size ~levels payload in
            Ok (c, payload_off + nbytes)
          end
    end
  end

let to_chunk c =
  if Array.length c.levels <> 3 then
    Error "Multiframe.to_chunk: needs exactly 3 levels"
  else begin
    let* h =
      Header.v ~ctype:c.ctype ~size:c.size ~len:c.len ~c:c.levels.(0)
        ~t:c.levels.(1) ~x:c.levels.(2)
    in
    Chunk.make h c.payload
  end

let of_chunk (ch : Chunk.t) =
  let h = ch.Chunk.header in
  {
    ctype = h.Header.ctype;
    size = h.Header.size;
    levels = [| h.Header.c; h.Header.t; h.Header.x |];
    len = h.Header.len;
    payload = ch.Chunk.payload;
  }

let equal a b =
  Ctype.equal a.ctype b.ctype
  && a.size = b.size && a.len = b.len
  && Array.length a.levels = Array.length b.levels
  && Array.for_all2 Ftuple.equal a.levels b.levels
  && Bytes.equal a.payload b.payload

let pp fmt c =
  Format.fprintf fmt "@[<h>[%a size=%d len=%d" Ctype.pp c.ctype c.size c.len;
  Array.iteri
    (fun i u -> Format.fprintf fmt " L%d=%a" i Ftuple.pp u)
    c.levels;
  Format.fprintf fmt " |%d bytes|]@]" (Bytes.length c.payload)
