(** Generalised chunks with an arbitrary number of framing levels.

    The paper fixes three levels (connection / TPDU / external) for
    exposition but notes the design "can be generalised to provide
    end-to-end error detection of chunks designed for multiple types of
    external PDUs" and that conceptually each datum carries {e multiple}
    [(ID, SN, ST)] tuples, one per PDU type in the communication system
    (§2, Fig. 1).  This module implements that generalisation: a chunk
    whose header carries [n >= 1] tuples, all advancing in lock-step,
    with Appendix C/D fragmentation and reassembly over every level at
    once.  Level 0 is conventionally the connection.

    The three-level {!Chunk} is the tuned common case; [Multiframe] is
    for protocol stacks that need more simultaneous framings (e.g.
    record + message + transaction + connection). *)

type t = private {
  ctype : Ctype.t;
  size : int;
  levels : Ftuple.t array;  (** one framing tuple per level *)
  len : int;
  payload : bytes;
}

val make :
  ctype:Ctype.t ->
  size:int ->
  levels:Ftuple.t array ->
  bytes ->
  (t, string) result
(** Validates: at least one level, payload a positive multiple of
    [size] for data chunks. *)

val levels : t -> int
(** Number of framing levels this chunk is labelled at. *)

val elements : t -> int
(** Number of data elements the (shared) LEN announces. *)

val split : t -> elems:int -> (t * t, string) result
(** Appendix C over every level simultaneously: the second part's SNs
    advance by [elems] at {e all} levels; only it keeps the ST bits. *)

val mergeable : t -> t -> bool
(** Whether {!merge} would succeed: same labels at every level and
    SN-adjacency at every level. *)

val merge : t -> t -> (t, string) result
(** Appendix D over every level. *)

val coalesce : t list -> t list
(** One-step reassembly of a batch (any order). *)

val encode : Buffer.t -> t -> unit
(** Wire image: like {!Wire} but with a level-count byte and that many
    13-byte tuples. *)

val decode : bytes -> int -> (t * int, string) result
(** Parse one encoded multiframe chunk at an offset; returns it and the
    offset just past it. *)

val to_chunk : t -> (Chunk.t, string) result
(** A 3-level multiframe chunk viewed as a classic chunk (levels 0, 1, 2
    become C, T, X). *)

val of_chunk : Chunk.t -> t
(** The inverse embedding. *)

val equal : t -> t -> bool
(** Structural equality: every level's tuple plus the payload. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering listing every level's tuple. *)
