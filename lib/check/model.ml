type t = {
  elems : int;
  elem_size : int;
  n_tpdus : int;
  expected : bytes;
}

(* Mirrors [Framer]'s cutting rules without running the framer: each
   frame is padded to a whole element, elements accumulate on the
   connection, and a TPDU boundary falls every [tpdu_elems] elements
   plus once at the end of the stream. *)
let of_schedule (s : Schedule.t) =
  let data = Schedule.data_of s in
  let full = s.data_len / s.frame_bytes in
  let rem = s.data_len mod s.frame_bytes in
  let elems =
    (full * (s.frame_bytes / s.elem_size))
    + ((rem + s.elem_size - 1) / s.elem_size)
  in
  let n_tpdus = (elems + s.tpdu_elems - 1) / s.tpdu_elems in
  let expected = Bytes.make (elems * s.elem_size) '\000' in
  Bytes.blit data 0 expected 0 s.data_len;
  { elems; elem_size = s.elem_size; n_tpdus; expected }
