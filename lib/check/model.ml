type t = {
  elems : int;
  elem_size : int;
  n_tpdus : int;
  expected : bytes;
  streams : (int * bytes list) list;
}

(* Mirrors [Framer]'s cutting rules without running the framer: each
   frame is padded to a whole element, elements accumulate on the
   connection, and a TPDU boundary falls every [tpdu_elems] elements
   plus once at the end of the stream. *)
let of_schedule (s : Schedule.t) =
  let full = s.data_len / s.frame_bytes in
  let rem = s.data_len mod s.frame_bytes in
  let elems =
    (full * (s.frame_bytes / s.elem_size))
    + ((rem + s.elem_size - 1) / s.elem_size)
  in
  let n_tpdus = (elems + s.tpdu_elems - 1) / s.tpdu_elems in
  let pad data =
    let b = Bytes.make (elems * s.elem_size) '\000' in
    Bytes.blit data 0 b 0 s.data_len;
    b
  in
  (* Every legitimate connection carries one stream per epoch; only
     connection 1 gets a second epoch, and only when the schedule
     re-opens it. *)
  let streams =
    List.init s.Schedule.connections (fun i ->
        let conn = i + 1 in
        let epochs = if conn = 1 && s.Schedule.reopen then 2 else 1 in
        ( conn,
          List.init epochs (fun epoch ->
              pad (Schedule.data_of_conn s ~conn ~epoch)) ))
  in
  let expected = pad (Schedule.data_of s) in
  { elems; elem_size = s.elem_size; n_tpdus; expected; streams }

(* The element span a fixed (non-adaptive) framer gives TPDU [t_id]:
   [tpdu_elems] each, the last one truncated to the stream end. *)
let tpdu_span m (s : Schedule.t) ~t_id =
  if t_id < 0 || t_id >= m.n_tpdus then None
  else
    let first = t_id * s.Schedule.tpdu_elems in
    Some (first, min s.Schedule.tpdu_elems (m.elems - first))

(* The element runs the shed contract permits to be missing: the spans
   of every sheddable T.ID.  Everything outside them must be delivered
   byte-exactly whatever the sender sheds. *)
let sheddable_spans m (s : Schedule.t) =
  List.filter_map
    (fun t_id ->
      if Schedule.sheddable_tid s ~t_id then tpdu_span m s ~t_id else None)
    (List.init m.n_tpdus (fun i -> i))
