type result = {
  schedule : Schedule.t;
  violations : Oracle.violation list;
  runs : int;
}

(* Simplifying rewrites, roughly ordered by how much schedule they
   delete.  Each returns [None] when it would not change anything. *)
let transforms (s : Schedule.t) : (string * Schedule.t) list =
  let t name cond v = if cond then Some (name, v) else None in
  let base =
    [
      (* robustness machinery first — deleting a whole adversary or
         outage removes the most schedule at once *)
      t "crashes=none" (s.crashes <> [])
        { s with crashes = []; snap_period = 0.0 };
      t "snap_period=0" (s.crashes <> [] && s.snap_period > 0.0)
        { s with snap_period = 0.0 };
      t "flood=none" (s.flood <> None) { s with flood = None };
      t "byz=none" (s.byz <> None) { s with byz = None };
      t "overlap=none" (s.overlap <> None) { s with overlap = None };
      t "outage=none" (s.outage <> None) { s with outage = None };
      t "shed=none" (s.shed <> None) { s with shed = None };
      t "blackhole=none" (s.ack_blackhole <> None)
        { s with ack_blackhole = None; give_up_txs = 40 };
      t "connections=1" (s.connections > 1) { s with connections = 1 };
      t "reopen=off" s.reopen { s with reopen = false };
      t "fastpath=off" s.fastpath { s with fastpath = false };
      t "rto_adaptive=off" s.rto_adaptive { s with rto_adaptive = false };
      t "budget=0" (s.state_budget > 0) { s with state_budget = 0 };
      t "corrupt=0" (s.corrupt > 0.0) { s with corrupt = 0.0 };
      t "loss=0" (s.loss > 0.0) { s with loss = 0.0 };
      t "duplicate=0" (s.duplicate > 0.0) { s with duplicate = 0.0 };
      t "dropper=none" (s.dropper <> None) { s with dropper = None };
      t "jitter=0" (s.jitter > 0.0) { s with jitter = 0.0 };
      t "skew=0" (s.skew > 0.0) { s with skew = 0.0 };
      t "paths=1" (s.paths > 1) { s with paths = 1 };
      t "spread=rr"
        (s.spread <> Schedule.Round_robin)
        { s with spread = Schedule.Round_robin };
      t "sack=off" s.sack { s with sack = false };
      t "adaptive=off" s.adaptive { s with adaptive = false };
      t "window=1" (s.window > 1) { s with window = 1 };
      t "halve-data" (s.data_len > 8) { s with data_len = s.data_len / 2 };
      t "halve-frames"
        (s.frame_bytes > 8 * s.elem_size)
        { s with frame_bytes = s.elem_size * (s.frame_bytes / s.elem_size / 2) };
    ]
  in
  (* Dropping crashes one at a time keeps a counterexample that needs,
     say, only the second crash-restart replayable (the remaining crash
     list stays ordered and non-overlapping by construction). *)
  let drop_crashes =
    List.mapi
      (fun i _ ->
        Some
          ( Printf.sprintf "drop-crash-%d" i,
            { s with crashes = List.filteri (fun j _ -> j <> i) s.crashes } ))
      s.crashes
  in
  let drop_gateways =
    List.mapi
      (fun i _ ->
        Some
          ( Printf.sprintf "drop-gateway-%d" i,
            { s with gateways = List.filteri (fun j _ -> j <> i) s.gateways } ))
      s.gateways
  in
  (* Disarming one byzantine mode at a time (or dropping to one byz
     connection, or halving the flap rate) isolates which behaviour the
     counterexample actually needs. *)
  let shrink_byz =
    match s.byz with
    | None -> []
    | Some b ->
        let w name cond v =
          t name cond { s with byz = Some v }
        in
        [
          w "byz-acks=off" b.Schedule.bz_acks
            { b with Schedule.bz_acks = false };
          w "byz-sheds=off" b.Schedule.bz_sheds
            { b with Schedule.bz_sheds = false };
          w "byz-replay=off" b.Schedule.bz_replay
            { b with Schedule.bz_replay = false };
          w "byz-garbage=off" b.Schedule.bz_garbage
            { b with Schedule.bz_garbage = false };
          w "byz-conns=1"
            (b.Schedule.bz_conns > 1)
            { b with Schedule.bz_conns = 1 };
          w "byz-halve-rate"
            (b.Schedule.bz_rate > 50.0)
            { b with Schedule.bz_rate = b.Schedule.bz_rate /. 2.0 };
        ]
  in
  let unbatch =
    if List.exists (fun g -> g.Schedule.gw_batch > 1) s.gateways then
      Some
        ( "batch=1",
          {
            s with
            gateways =
              List.map (fun g -> { g with Schedule.gw_batch = 1 }) s.gateways;
          } )
    else None
  in
  List.filter_map Fun.id
    (base @ shrink_byz @ drop_crashes @ drop_gateways @ [ unbatch ])

let still_violating ?mutation s =
  let model = Model.of_schedule s in
  let observation = Driver.run ?mutation s in
  Oracle.check ~schedule:s ~model ~observation

(* Greedy fixpoint: keep the first simplification that preserves {e a}
   violation (not necessarily the same code — a simpler schedule that
   still breaks the stack is a better counterexample), restart from it,
   stop when nothing applies or the run budget is gone. *)
let shrink ?mutation ?(max_runs = 200) (s : Schedule.t)
    (violations : Oracle.violation list) =
  let runs = ref 0 in
  let rec go s violations =
    let rec try_transforms = function
      | [] -> { schedule = s; violations; runs = !runs }
      | (_name, candidate) :: rest ->
          if !runs >= max_runs then { schedule = s; violations; runs = !runs }
          else begin
            incr runs;
            match still_violating ?mutation candidate with
            | [] -> try_transforms rest
            | vs -> go candidate vs
          end
    in
    try_transforms (transforms s)
  in
  go s violations
