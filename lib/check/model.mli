(** The pure reference model: the idealised map from a schedule (which
    fixes the byte stream being sent and how it is framed) to the
    outcome a correct stack must produce, computed without running any
    of the stack.

    The model abstracts {e all} of the machinery under test — framing,
    packing, gateways, reassembly, verification, retransmission — down
    to three numbers and a buffer:

    - [elems]: how many elements the receiver's connection buffer holds
      once the stream is framed (only the final frame pads to a whole
      element);
    - [n_tpdus]: how many TPDUs a fixed-size framer cuts the stream
      into (the count a non-adaptive sender must get verified, exactly);
    - [expected]: the delivered buffer a complete transfer must equal —
      the sent bytes, zero-padded to [elems * elem_size].

    Multi-connection schedules add [streams]: the per-connection,
    per-epoch expected buffers (every legitimate connection carries one
    stream per epoch; connection 1 gets a second epoch when the schedule
    re-opens it after close). *)

type t = {
  elems : int;
  elem_size : int;
  n_tpdus : int;
  expected : bytes;
  streams : (int * bytes list) list;
      (** (connection id, expected buffer per epoch, oldest first) *)
}

val of_schedule : Schedule.t -> t

val tpdu_span : t -> Schedule.t -> t_id:int -> (int * int) option
(** The [(first_elem, elems)] span a fixed (non-adaptive) framer gives
    TPDU [t_id]; [None] outside [0, n_tpdus).  Meaningless for adaptive
    schedules, which is why a shed spec forbids them. *)

val sheddable_spans : t -> Schedule.t -> (int * int) list
(** The element runs the shed contract permits to be missing (the spans
    of every {!Schedule.sheddable_tid} T.ID, ascending).  A conforming
    stack may shed any subset of these and nothing else. *)
