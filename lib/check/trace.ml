type t = {
  capacity : int;
  events : (float * string) array;
  mutable count : int;  (* total events ever recorded *)
}

let create ?(capacity = 2048) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  { capacity; events = Array.make capacity (0.0, ""); count = 0 }

let add t ~time event =
  t.events.(t.count mod t.capacity) <- (time, event);
  t.count <- t.count + 1

let recorded t = t.count
let dropped t = max 0 (t.count - t.capacity)

let events t =
  let kept = min t.count t.capacity in
  let first = t.count - kept in
  List.init kept (fun i -> t.events.((first + i) mod t.capacity))

let pp fmt t =
  if dropped t > 0 then
    Format.fprintf fmt "... %d earlier events dropped ...@." (dropped t);
  List.iter
    (fun (time, ev) -> Format.fprintf fmt "%12.6f  %s@." time ev)
    (events t)
