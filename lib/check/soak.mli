(** Soak loop: generate schedules for a profile, drive the real stack,
    diff against the model, shrink whatever violates.  One call powers
    the tier-1 qcheck-sized budget, the CLI, and the CI nightly run. *)

type finding = {
  schedule : Schedule.t;  (** as generated *)
  violations : Oracle.violation list;
  shrunk : Shrink.result;  (** minimised replayable counterexample *)
}

type report = {
  profile : Schedule.profile;
  mutation : Driver.mutation;
  schedules_run : int;
  findings : finding list;
  detect_trials : int;
      (** Table 1 fault-injection samples interleaved with the soak *)
  detect_undetected : int;  (** trials where wrong data got through *)
  ov_injected : int;  (** overlap-adversary packets injected, all runs *)
  ov_conflicts_seen : int;  (** placement byte conflicts observed *)
  ov_conflicts_rejected : int;
      (** conflicts discarded by first-verified-wins *)
  sheds_signalled : int;  (** sender shed decisions, all runs *)
  sheds_honoured : int;  (** sheds the receivers honoured, all runs *)
  shed_elems : int;  (** elements covered by honoured sheds, all runs *)
  fp_runs : int;  (** schedules that ran the flow-cache fast path *)
  fp_hits : int;  (** flow-cache hits, both layers, all runs *)
  fp_misses : int;  (** flow-cache misses, both layers, all runs *)
  fp_invalidations : int;  (** eager invalidations, both layers, all runs *)
  bz_injected : int;  (** byzantine-adversary packets injected, all runs *)
  bz_flaps : int;  (** byzantine Open/garbage/Close cycles, all runs *)
  bz_anomalies : int;  (** endpoint anomalies attributed, all runs *)
  bz_quarantines : int;  (** admissions revoked, all runs *)
  bz_quarantine_drops : int;  (** events refused from boxed conns, all runs *)
  bz_honest_quarantined : int;
      (** honest connections ever boxed under byzantine fire — the
          [honest-immunity] row demands this stays 0 *)
  wall_seconds : float;
}

val clean : report -> bool
(** No oracle violation and no undetected injection. *)

val run_profile :
  ?mutation:Driver.mutation ->
  ?schedules:int ->
  ?seconds:float ->
  ?detect_every:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  Schedule.profile ->
  report
(** Run up to [schedules] (default 1000) schedules, stopping early when
    the optional wall-clock budget [seconds] runs out.  Deterministic
    for a given [seed] (modulo which schedules fit in the budget).  The
    first few findings are shrunk; later ones are recorded as-is. *)

val json_of_report : report -> string
val json_of_reports : report list -> string
