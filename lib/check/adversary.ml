open Labelling

type stats = { injected : int; forged_opens : int; forged_tpdus : int }

type t = {
  engine : Netsim.Engine.t;
  rng : Netsim.Rng.t;
  rate : float;
  stop : float;
  legit_conns : int list;
  bogus_conns : int;
  elem_size : int;
  inject : bytes -> unit;
  mutable injected : int;
  mutable forged_opens : int;
  mutable forged_tpdus : int;
}

(* Bogus connection ids live far above any legitimate C.ID; forged
   T.IDs live far above any T.ID a legitimate sender epoch uses. *)
let bogus_conn_base = 100_000
let bogus_tid_base = 500_000

let send a chunk =
  match Wire.encode_packet [ chunk ] with
  | Error _ -> ()
  | Ok b ->
      a.injected <- a.injected + 1;
      a.inject b

let pick_legit a =
  match a.legit_conns with
  | [] -> 1
  | l -> List.nth l (Netsim.Rng.int a.rng (List.length l))

let forged_data_chunk a ~conn_id ~t_id =
  let payload = Bytes.make a.elem_size '\xA5' in
  let sn = Netsim.Rng.int a.rng 1024 in
  match
    Chunk.data ~size:a.elem_size
      ~c:(Ftuple.v ~id:conn_id ~sn ())
      ~t:(Ftuple.v ~id:t_id ~sn:(Netsim.Rng.int a.rng 16) ())
      ~x:(Ftuple.v ~id:t_id ~sn ())
      payload
  with
  | Ok c -> Some c
  | Error _ -> None

let fire a =
  match Netsim.Rng.int a.rng 5 with
  | 0 ->
      (* forged Open: a connection nobody will ever send data on — the
         receiver's admission and stale-connection GC must absorb it *)
      let cid = bogus_conn_base + Netsim.Rng.int a.rng a.bogus_conns in
      a.forged_opens <- a.forged_opens + 1;
      send a (Connection.signal_chunk ~conn_id:cid (Open { first_csn = 0 }))
  | 1 ->
      (* data for a connection that was never established: must be
         refused at the door (establishment precedes data) *)
      let cid = bogus_conn_base + Netsim.Rng.int a.rng a.bogus_conns in
      Option.iter (send a)
        (forged_data_chunk a ~conn_id:cid ~t_id:(Netsim.Rng.int a.rng 64))
  | 2 | 3 ->
      (* the state-exhaustion attack: a partial TPDU on a {e legitimate}
         connection that will never complete — its ED chunk never comes,
         so only the budget/deadline governor can reclaim it.  Label
         corroboration keeps it out of the placement buffer. *)
      let cid = pick_legit a in
      let t_id = bogus_tid_base + Netsim.Rng.int a.rng 4096 in
      a.forged_tpdus <- a.forged_tpdus + 1;
      Option.iter (send a) (forged_data_chunk a ~conn_id:cid ~t_id)
  | _ ->
      (* forged abort for a random (usually live) TPDU: at worst the
         receiver re-collects the state from the next retransmission *)
      let cid = pick_legit a in
      let t_id = Netsim.Rng.int a.rng 64 in
      send a (Connection.signal_chunk ~conn_id:cid (Abort_tpdu { t_id }))

let rec arm a =
  let interval = 1.0 /. a.rate in
  let delay = interval *. (0.5 +. Netsim.Rng.float a.rng 1.0) in
  Netsim.Engine.schedule a.engine ~delay (fun () ->
      if Netsim.Engine.now a.engine < a.stop then begin
        fire a;
        arm a
      end)

let create engine ~seed ~rate ~stop ~legit_conns ~bogus_conns ~elem_size
    ~inject () =
  if rate <= 0.0 then invalid_arg "Adversary.create: rate must be positive";
  let a =
    {
      engine;
      rng = Netsim.Rng.create ~seed;
      rate;
      stop;
      legit_conns;
      bogus_conns = max 1 bogus_conns;
      elem_size;
      inject;
      injected = 0;
      forged_opens = 0;
      forged_tpdus = 0;
    }
  in
  arm a;
  a

let stats a =
  {
    injected = a.injected;
    forged_opens = a.forged_opens;
    forged_tpdus = a.forged_tpdus;
  }
