module CT = Transport.Chunk_transport

(* Stack bugs injected at the receiver door to prove the oracle can see
   (and the shrinker can minimise) real misbehaviour.  The door is the
   one point every forward packet crosses, whatever the topology. *)
type mutation =
  | No_mutation
  | Flip_every of int  (** XOR one byte of every [n]th delivered packet *)
  | Dup_every of int  (** deliver every [n]th packet twice *)
  | Drop_every of int  (** swallow every [n]th packet *)

let mutation_to_string = function
  | No_mutation -> "none"
  | Flip_every n -> Printf.sprintf "flip:%d" n
  | Dup_every n -> Printf.sprintf "dup:%d" n
  | Drop_every n -> Printf.sprintf "drop:%d" n

let mutation_of_string str =
  match String.split_on_char ':' str with
  | [ "none" ] -> Some No_mutation
  | [ "flip"; n ] -> Option.map (fun n -> Flip_every n) (int_of_string_opt n)
  | [ "dup"; n ] -> Option.map (fun n -> Dup_every n) (int_of_string_opt n)
  | [ "drop"; n ] -> Option.map (fun n -> Drop_every n) (int_of_string_opt n)
  | _ -> None

type observation = {
  ok : bool;
  complete : bool;
  gave_up : bool;
  finished : bool;
  delivered : bytes;
  delivered_elems : int;
  retransmissions : int;
  sack_retransmissions : int;
  nacks_sent : int;
  tpdus_sent : int;
  packets_sent : int;
  verifier : Edc.Verifier.stats;
  verifier_in_flight : int;
  stashed_tpdus : int;
  engine_pending : int;
  sim_time : float;
  forward : Netsim.Link.stats;
  dropper : Netsim.Dropper.stats option;
  gateways_malformed : int;
  mutated_packets : int;
}

(* Far beyond the slowest legitimate run: a sender that gives up does so
   after at most ~303 RTOs (capped exponential backoff), and RTOs are
   clamped to 2 s.  Events still queued at the horizon mean a component
   reschedules itself forever — the lockup the oracle reports. *)
let horizon = 1000.0

let run ?(mutation = No_mutation) ?trace (s : Schedule.t) =
  let config = Schedule.config_of s in
  let data = Schedule.data_of s in
  let engine = Netsim.Engine.create ~seed:s.seed () in
  let trec fmt =
    Printf.ksprintf
      (fun ev ->
        match trace with
        | Some t -> Trace.add t ~time:(Netsim.Engine.now engine) ev
        | None -> ())
      fmt
  in
  let receiver = ref None in
  let sender = ref None in
  let mutated = ref 0 in
  let door_count = ref 0 in
  let to_receiver_raw b =
    match !receiver with Some r -> CT.Receiver.on_packet r b | None -> ()
  in
  let to_receiver b =
    incr door_count;
    let n = !door_count in
    trec "rx packet #%d (%d bytes)" n (Bytes.length b);
    match mutation with
    | No_mutation -> to_receiver_raw b
    | Flip_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION flip byte of packet #%d" n;
        let b = Bytes.copy b in
        let i = 50 mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        to_receiver_raw b
    | Dup_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION duplicate packet #%d" n;
        to_receiver_raw b;
        to_receiver_raw b
    | Drop_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION drop packet #%d" n
    | Flip_every _ | Dup_every _ | Drop_every _ -> to_receiver_raw b
  in
  (* Congestion-drop element just before the receiver.  Doomed-TPDU
     memory must not outlive a retransmission round, or the dropper
     black-holes a TPDU forever; resetting on the first arrival after an
     RTO-sized quiet period keeps the simulation event-driven (a
     repeating reset timer would never let the queue drain). *)
  let dropper, after_gateways =
    match s.dropper with
    | None -> (None, to_receiver)
    | Some { drop_mode; drop_loss } ->
        let d =
          Netsim.Dropper.create ~mode:drop_mode
            ~rng:(Netsim.Rng.split (Netsim.Engine.rng engine))
            ~loss:drop_loss ~forward:to_receiver ()
        in
        let last_reset = ref 0.0 in
        ( Some d,
          fun b ->
            let now = Netsim.Engine.now engine in
            if now -. !last_reset > s.rto then begin
              last_reset := now;
              Netsim.Dropper.reset_epoch d
            end;
            Netsim.Dropper.on_packet d b )
  in
  (* Gateway chain, built back to front; each re-envelopes for its own
     outgoing link.  Batching gateways get a one-shot flush scheduled
     per arrival so held chunks always drain. *)
  let gws = ref [] in
  let first_hop =
    List.fold_left
      (fun downstream (g : Schedule.gateway) ->
        let out_link =
          Netsim.Link.create engine ~rate_bps:s.rate_bps ~delay:s.delay
            ~mtu:g.gw_mtu ~deliver:downstream ()
        in
        let gw =
          Netsim.Gateway.create ~policy:g.gw_policy ~flush_batch:g.gw_batch
            ~forward:(fun b -> ignore (Netsim.Link.send out_link b))
            ~out_mtu:g.gw_mtu ()
        in
        gws := gw :: !gws;
        fun b ->
          Netsim.Gateway.on_packet gw b;
          if g.gw_batch > 1 then
            Netsim.Engine.schedule engine ~delay:0.002 (fun () ->
                Netsim.Gateway.flush gw))
      after_gateways (List.rev s.gateways)
  in
  let spread =
    match s.spread with
    | Schedule.Round_robin -> Netsim.Multipath.Round_robin
    | Schedule.Random_path -> Netsim.Multipath.Random
    | Schedule.Route_change t -> Netsim.Multipath.Route_change t
  in
  let forward =
    Netsim.Multipath.create engine ~paths:s.paths ~rate_bps:s.rate_bps
      ~delay:s.delay ~skew:s.skew ~jitter:s.jitter ~mtu:config.CT.mtu
      ~loss:s.loss ~corrupt:s.corrupt ~duplicate:s.duplicate ~spread
      ~deliver:first_hop ()
  in
  let reverse =
    Netsim.Link.create engine ~name:"ack" ~rate_bps:1e9 ~delay:s.delay
      ~mtu:config.CT.mtu
      ~deliver:(fun b ->
        trec "ack packet (%d bytes)" (Bytes.length b);
        match !sender with Some t -> CT.Sender.on_packet t b | None -> ())
      ()
  in
  let expected_elems =
    CT.expected_elements config ~data_len:(Bytes.length data)
  in
  let rx =
    CT.Receiver.create engine config
      ~send_ack:(fun b -> ignore (Netsim.Link.send reverse b))
      ~expected_elems ()
  in
  receiver := Some rx;
  let tx =
    CT.Sender.create engine config
      ~send:(fun b -> ignore (Netsim.Multipath.send forward b))
      ~data ()
  in
  sender := Some tx;
  CT.Sender.start tx;
  Netsim.Engine.run ~until:horizon engine;
  let delivered = CT.Receiver.contents rx in
  let n = Bytes.length data in
  let ok =
    (not (CT.Sender.gave_up tx))
    && CT.Receiver.complete rx
    && Bytes.length delivered >= n
    && Bytes.equal (Bytes.sub delivered 0 n) data
  in
  trec "run end: ok=%b pending=%d" ok (Netsim.Engine.pending engine);
  {
    ok;
    complete = CT.Receiver.complete rx;
    gave_up = CT.Sender.gave_up tx;
    finished = CT.Sender.finished tx;
    delivered;
    delivered_elems = CT.Receiver.delivered_elems rx;
    retransmissions = CT.Sender.retransmissions tx;
    sack_retransmissions = CT.Sender.sack_retransmissions tx;
    nacks_sent = CT.Receiver.nacks_sent rx;
    tpdus_sent = CT.Sender.tpdus_sent tx;
    packets_sent = CT.Sender.packets_sent tx;
    verifier = CT.Receiver.verifier_stats rx;
    verifier_in_flight = CT.Receiver.verifier_in_flight rx;
    stashed_tpdus = CT.Receiver.stashed_tpdus rx;
    engine_pending = Netsim.Engine.pending engine;
    sim_time = Netsim.Engine.now engine;
    forward = Netsim.Multipath.aggregate_stats forward;
    dropper = Option.map Netsim.Dropper.stats dropper;
    gateways_malformed =
      List.fold_left
        (fun acc gw -> acc + (Netsim.Gateway.stats gw).Netsim.Gateway.malformed)
        0 !gws;
    mutated_packets = !mutated;
  }
