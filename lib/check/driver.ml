module CT = Transport.Chunk_transport
module Persist = Transport.Persist

(* Stack bugs injected at the receiver door to prove the oracle can see
   (and the shrinker can minimise) real misbehaviour.  The door is the
   one point every forward packet crosses, whatever the topology. *)
type mutation =
  | No_mutation
  | Flip_every of int  (** XOR one byte of every [n]th delivered packet *)
  | Dup_every of int  (** deliver every [n]th packet twice *)
  | Drop_every of int  (** swallow every [n]th packet *)
  | Corrupt_restore
      (** flip one already-verified byte in the first restored snapshot *)
  | Overlap_clobber
      (** forge a {e correctly sealed} TPDU with divergent bytes over the
          first data chunk's connection range and inject it ahead of the
          original — a verified-vs-verified clash no honest network can
          produce *)
  | Shed_clobber
      (** mis-configure both endpoints to treat TPDU 0 — which the
          schedule's shed contract does {e not} declare sheddable — as
          expendable, and swallow its data at the door so the sender's
          shed policy fires: the stack "completes" with Critical bytes
          missing, the shed-safety violation the oracle must catch *)
  | Byz_clobber
      (** disable the anomaly-scoring quarantine ([anomaly_budget = 0])
          so a byzantine peer runs unboxed: its flap churn accumulates
          unbounded per-connection state, the isolation-budget violation
          the oracle must catch — proving the defense, not luck, is
          what contains the peer *)

let mutation_to_string = function
  | No_mutation -> "none"
  | Flip_every n -> Printf.sprintf "flip:%d" n
  | Dup_every n -> Printf.sprintf "dup:%d" n
  | Drop_every n -> Printf.sprintf "drop:%d" n
  | Corrupt_restore -> "corrupt-restore"
  | Overlap_clobber -> "overlap-clobber"
  | Shed_clobber -> "shed-clobber"
  | Byz_clobber -> "byz-clobber"

let mutation_of_string str =
  match String.split_on_char ':' str with
  | [ "none" ] -> Some No_mutation
  | [ "flip"; n ] -> Option.map (fun n -> Flip_every n) (int_of_string_opt n)
  | [ "dup"; n ] -> Option.map (fun n -> Dup_every n) (int_of_string_opt n)
  | [ "drop"; n ] -> Option.map (fun n -> Drop_every n) (int_of_string_opt n)
  | [ "corrupt-restore" ] -> Some Corrupt_restore
  | [ "overlap-clobber" ] -> Some Overlap_clobber
  | [ "shed-clobber" ] -> Some Shed_clobber
  | [ "byz-clobber" ] -> Some Byz_clobber
  | _ -> None

type epoch_obs = {
  e_conn : int;
  e_epoch : int;
  e_gave_up : bool;
  e_complete : bool;
  e_delivered : bytes option;
      (** the epoch's receiver buffer; [None] if the receiver never saw
          the epoch *)
}

type multi_obs = {
  mo_epochs : epoch_obs list;
  mo_live_conns : int;  (** connections still live at quiescence *)
  mo_known_conns : int;  (** connections ever admitted (incl. flood) *)
}

(* Cross-layer deltas of the [Obs] metric registry over exactly one run,
   for the oracle's metrics-driven checks.  All zeros when the
   observability layer is compiled out. *)
type metrics_probe = {
  mp_verified : int;  (* edc_tpdus_passed_total delta *)
  mp_acked : int;  (* transport_acks_total delta *)
  mp_governor_peak : int;  (* governor occupancy high-water this run *)
}

(* The delivery outcome of the permutation re-run: the same schedule
   executed with a different overlap-injection seed, so the overlap
   set's arrival order (and mix) differs while the legitimate transfer
   is untouched. *)
type permuted_obs = {
  p_delivered : bytes;
  p_complete : bool;
  p_gave_up : bool;
}

(* The delivery outcome of the cache-off re-run of a fastpath schedule:
   the same (seed, schedule) executed with [fastpath = false], so every
   packet takes the decode-everything slow path.  The flow cache claims
   to be pure acceleration, so the two runs must agree on every delivery
   observable — the [fastpath-coherence] oracle row compares them. *)
type coherence_obs = {
  c_complete : bool;
  c_gave_up : bool;
  c_delivered : bytes;
  c_epochs : epoch_obs list option;  (* multi runs: the per-epoch join *)
}

(* Per-connection containment accounting for one byzantine connection,
   as the endpoint saw it at quiescence. *)
type byz_conn_obs = {
  bc_conn : int;
  bc_epochs : int;  (* epochs the peer ever started on this C.ID *)
  bc_hist_bytes : int;  (* archived bytes parked on the endpoint *)
  bc_quarantines : int;  (* admissions revoked *)
  bc_boxed : bool;  (* still boxed (or poisoned) at quiescence *)
}

(* The byzantine adversary's own accounting plus the endpoint-side view
   of its connections — what the isolation-budget oracle row bounds. *)
type byz_obs = {
  bo_stats : Netsim.Byzantine.stats;
  bo_conns : byz_conn_obs list;
  bo_honest_quarantined : int;
      (* honest connections ever boxed — must stay 0: every scored
         anomaly is provably authored, so no attacker can talk an
         honest connection into the penalty box *)
  bo_sender_bogus_acks : int;
      (* fabricated ACK/NACKs the honest senders detected and ignored *)
}

(* The honest per-epoch outcomes of the blast-radius re-run: the same
   (seed, schedule, mutation) with the byzantine peer removed.  The
   adversary's RNG is its own and its packets bypass the shared links,
   so the honest wire is byte-identical across the two runs — any
   honest-outcome divergence is containment failure. *)
type blast_obs = { b_epochs : epoch_obs list }

type observation = {
  ok : bool;
  complete : bool;
  gave_up : bool;
  finished : bool;
  delivered : bytes;
  delivered_elems : int;
  retransmissions : int;
  sack_retransmissions : int;
  nacks_sent : int;
  tpdus_sent : int;
  packets_sent : int;
  verifier : Edc.Verifier.stats;
  verifier_in_flight : int;
  stashed_tpdus : int;
  engine_pending : int;
  sim_time : float;
  forward : Netsim.Link.stats;
  dropper : Netsim.Dropper.stats option;
  gateways_malformed : int;
  mutated_packets : int;
  (* control plane *)
  reacks_sent : int;
  aborts_sent : int;
  aborts_received : int;
  (* partial reliability *)
  sheds_sent : int;
  sheds_received : int;
  shed_elems : int;
  shed_spans : (int * int) list;
  receiver_evictions : int;
  conn_gcs : int;
  displaced_conns : int;
  unknown_drops : int;
  state_high_water : int;
  state_accounted : int;
  flood_injected : int;
  rtt_samples : int;
  max_txs_at_rtt_sample : int;
  final_rto : float;
  (* crash recovery *)
  crashes_injected : int;
  restores : int;
  recovery_bad : int;
  restore_over_budget : int;
  roundtrip_failures : int;
  snapshots_taken : int;
  journal_records : int;
  multi : multi_obs option;
  metrics : metrics_probe;
  (* overlap policy *)
  overlap_conflicts_seen : int;
  overlap_conflicts_rejected : int;
  overlap_quarantined : int;
  verified_overwrites : int;  (* must stay 0: two verified TPDUs clashing *)
  overlap_injected : int;  (* overlap-adversary packets put on the wire *)
  permuted : permuted_obs option;  (* present iff the schedule overlaps *)
  (* flow-cache fast path *)
  fastpath_stats : Transport.Flowcache.stats;
      (* both cache layers summed, across crash incarnations; all zero
         on slow-path runs *)
  coherence : coherence_obs option;
      (* present iff the schedule ran the fast path *)
  (* byzantine containment (DESIGN §10); counters accumulate across
     crash incarnations like every other endpoint statistic *)
  anomalies : int;
  sig_damage : int;
  quarantines : int;
  quarantine_drops : int;
  conns_poisoned : int;
  sheds_refused : int;
  byz : byz_obs option;  (* present iff the schedule runs the adversary *)
  blast : blast_obs option;  (* present iff [byz] is *)
}

(* The probe reads the process-wide registry, so a run's deltas are
   meaningful only while runs execute one at a time — which the driver
   guarantees (one engine, one domain).  The occupancy gauge is zeroed
   and re-marked at run start so the high-water mark read at run end
   belongs to this run's governor alone. *)
let mp_passed = Obs.Metrics.counter "edc_tpdus_passed_total"
let mp_acks = Obs.Metrics.counter "transport_acks_total"
let mp_occ = Obs.Metrics.gauge "governor_occupancy_bytes"

let probe_start () =
  if Obs.enabled then begin
    Obs.Metrics.set mp_occ 0;
    Obs.Metrics.mark mp_occ
  end;
  (Obs.Metrics.value mp_passed, Obs.Metrics.value mp_acks)

let probe_end (passed0, acks0) =
  {
    mp_verified = Obs.Metrics.value mp_passed - passed0;
    mp_acked = Obs.Metrics.value mp_acks - acks0;
    mp_governor_peak = Obs.Metrics.gauge_max mp_occ;
  }

(* Far beyond the slowest legitimate run: a sender that gives up does so
   after at most ~303 RTOs (capped exponential backoff), RTOs are
   clamped to 2 s, and the state governor's deadline sweep finishes
   within one TTL of the last arrival.  Events still queued at the
   horizon mean a component reschedules itself forever — the lockup the
   oracle reports. *)
let horizon = 1000.0

(* Everything on the forward side of the wire is common to the single-
   and multi-connection paths: door mutation, congestion dropper,
   gateway chain, multipath, plus the scheduled outage valve in front
   of it all. *)
type plumbing = {
  engine : Netsim.Engine.t;
  forward_send : bytes -> unit;
  door : bytes -> unit;  (** the raw receiver door (adversary injection) *)
  forward_stats : unit -> Netsim.Link.stats;
  dropper_stats : unit -> Netsim.Dropper.stats option;
  gateways_malformed : unit -> int;
  mutated : int ref;
}

let make_trec engine trace fmt =
  Printf.ksprintf
    (fun ev ->
      match trace with
      | Some t -> Trace.add t ~time:(Netsim.Engine.now engine) ev
      | None -> ())
    fmt

(* The Shed_clobber mutation, part 1: both endpoints mis-classify TPDU 0
   as expendable and (if the schedule did not already) arm the sender's
   shed policy.  Forcing the {e config} rather than the schedule is what
   makes the mutation survive the [shed=none] shrink transform — the
   oracle must catch it from the observed behaviour alone. *)
let shed_clobber_config (config : CT.config) =
  let base_classify = config.CT.classify in
  {
    config with
    CT.classify =
      (fun t_id ->
        if t_id = 0 then Labelling.Significance.Sheddable 1
        else base_classify t_id);
    shed_txs =
      (if config.CT.shed_txs > 0 then config.CT.shed_txs
       else if config.CT.give_up_txs > 1 then min 2 (config.CT.give_up_txs - 1)
       else 0);
  }

(* Part 2's door predicate: a packet carrying TPDU-0 payload (data or ED
   chunks).  Signal chunks pass — the shed signal itself must reach the
   receiver for the clobber to "succeed". *)
let carries_tid0_payload b =
  let open Labelling in
  match Wire.decode_packet b with
  | Error _ -> false
  | Ok chunks ->
      List.exists
        (fun c ->
          (Chunk.is_data c || Ctype.equal c.Chunk.header.Header.ctype Ctype.ed)
          && c.Chunk.header.Header.t.Ftuple.id = 0)
        chunks

let build_plumbing ~mutation ~trace (s : Schedule.t) engine to_receiver_raw =
  let trec fmt = make_trec engine trace fmt in
  let mutated = ref 0 in
  let door_count = ref 0 in
  let to_receiver b =
    incr door_count;
    let n = !door_count in
    trec "rx packet #%d (%d bytes)" n (Bytes.length b);
    match mutation with
    | No_mutation | Corrupt_restore | Overlap_clobber | Byz_clobber ->
        to_receiver_raw b
    | Shed_clobber ->
        if carries_tid0_payload b then begin
          incr mutated;
          trec "MUTATION swallow TPDU-0 packet #%d" n
        end
        else to_receiver_raw b
    | Flip_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION flip byte of packet #%d" n;
        let b = Bytes.copy b in
        let i = 50 mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        to_receiver_raw b
    | Dup_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION duplicate packet #%d" n;
        to_receiver_raw b;
        to_receiver_raw b
    | Drop_every k when k > 0 && n mod k = 0 ->
        incr mutated;
        trec "MUTATION drop packet #%d" n
    | Flip_every _ | Dup_every _ | Drop_every _ -> to_receiver_raw b
  in
  (* Congestion-drop element just before the receiver.  Doomed-TPDU
     memory must not outlive a retransmission round, or the dropper
     black-holes a TPDU forever; resetting on the first arrival after an
     RTO-sized quiet period keeps the simulation event-driven (a
     repeating reset timer would never let the queue drain). *)
  let dropper, after_gateways =
    match s.dropper with
    | None -> (None, to_receiver)
    | Some { drop_mode; drop_loss } ->
        let d =
          Netsim.Dropper.create ~mode:drop_mode
            ~sheddable:(fun t_id -> Schedule.sheddable_tid s ~t_id)
            ~rng:(Netsim.Rng.split (Netsim.Engine.rng engine))
            ~loss:drop_loss ~forward:to_receiver ()
        in
        let last_reset = ref 0.0 in
        ( Some d,
          fun b ->
            let now = Netsim.Engine.now engine in
            if now -. !last_reset > s.rto then begin
              last_reset := now;
              Netsim.Dropper.reset_epoch d
            end;
            Netsim.Dropper.on_packet d b )
  in
  (* Gateway chain, built back to front; each re-envelopes for its own
     outgoing link.  Batching gateways get a one-shot flush scheduled
     per arrival so held chunks always drain. *)
  let gws = ref [] in
  let first_hop =
    List.fold_left
      (fun downstream (g : Schedule.gateway) ->
        let out_link =
          Netsim.Link.create engine ~rate_bps:s.rate_bps ~delay:s.delay
            ~mtu:g.gw_mtu ~deliver:downstream ()
        in
        let gw =
          Netsim.Gateway.create ~policy:g.gw_policy ~flush_batch:g.gw_batch
            ~forward:(fun b -> ignore (Netsim.Link.send out_link b))
            ~out_mtu:g.gw_mtu ()
        in
        gws := gw :: !gws;
        fun b ->
          Netsim.Gateway.on_packet gw b;
          if g.gw_batch > 1 then
            Netsim.Engine.schedule engine ~delay:0.002 (fun () ->
                Netsim.Gateway.flush gw))
      after_gateways (List.rev s.gateways)
  in
  let spread =
    match s.spread with
    | Schedule.Round_robin -> Netsim.Multipath.Round_robin
    | Schedule.Random_path -> Netsim.Multipath.Random
    | Schedule.Route_change t -> Netsim.Multipath.Route_change t
  in
  let forward =
    Netsim.Multipath.create engine ~paths:s.paths ~rate_bps:s.rate_bps
      ~delay:s.delay ~skew:s.skew ~jitter:s.jitter ~mtu:s.mtu ~loss:s.loss
      ~corrupt:s.corrupt ~duplicate:s.duplicate ~spread ~deliver:first_hop ()
  in
  let into_multipath b = ignore (Netsim.Multipath.send forward b) in
  (* The scheduled forward outage sits between the sender and the wire:
     during the window packets are discarded (dead path) or held and
     replayed in order at resume (pausing link). *)
  let forward_send =
    match s.outage with
    | None -> into_multipath
    | Some o ->
        let valve =
          Netsim.Outage.create engine
            ~mode:(if o.Schedule.out_hold then Netsim.Outage.Hold
                   else Netsim.Outage.Drop)
            ~start:o.Schedule.out_start ~duration:o.Schedule.out_duration
            ~deliver:into_multipath ()
        in
        fun b -> Netsim.Outage.send valve b
  in
  {
    engine;
    forward_send;
    door = to_receiver_raw;
    forward_stats = (fun () -> Netsim.Multipath.aggregate_stats forward);
    dropper_stats = (fun () -> Option.map Netsim.Dropper.stats dropper);
    gateways_malformed =
      (fun () ->
        List.fold_left
          (fun acc gw ->
            acc + (Netsim.Gateway.stats gw).Netsim.Gateway.malformed)
          0 !gws);
    mutated;
  }

(* The reverse path, with the optional ACK black hole in front of it. *)
let build_reverse ~trace (s : Schedule.t) engine deliver =
  let trec fmt = make_trec engine trace fmt in
  let reverse =
    Netsim.Link.create engine ~name:"ack" ~rate_bps:1e9 ~delay:s.delay
      ~mtu:s.mtu
      ~deliver:(fun b ->
        trec "ack packet (%d bytes)" (Bytes.length b);
        deliver b)
      ()
  in
  let into_link b = ignore (Netsim.Link.send reverse b) in
  match s.ack_blackhole with
  | None -> into_link
  | Some (start, duration) ->
      let valve =
        Netsim.Outage.create engine ~mode:Netsim.Outage.Drop ~start ~duration
          ~deliver:into_link ()
      in
      fun b -> Netsim.Outage.send valve b

(* {2 Crash injection}

   A crash drops the endpoint's in-memory state and every packet that
   arrives during the down window; the restart rebuilds the endpoint
   from the persisted snapshot + journal.  Everything here is shared by
   the single- and multi-connection paths. *)

(* Per-run crash bookkeeping: counters the oracle's recovery checks
   read, plus accumulators for statistics that die with each crashed
   endpoint instance (the restored instance restarts them at zero). *)
type crash_track = {
  mutable ct_crashes : int;
  mutable ct_restores : int;
  mutable ct_bad : int;  (* recovery-safety probe failures *)
  mutable ct_over_budget : int;
  mutable ct_roundtrip : int;
  mutable ct_corrupted : bool;  (* Corrupt_restore already applied *)
  (* pre-crash statistics folded in at each teardown *)
  mutable ct_failed : int;
  mutable ct_dups : int;
  mutable ct_chunks : int;
  mutable ct_nacks : int;
  mutable ct_reacks : int;
  mutable ct_evictions : int;
  mutable ct_aborts : int;
  mutable ct_sheds : int;
  mutable ct_shed_elems : int;
  mutable ct_gcs : int;
  mutable ct_displaced : int;
  mutable ct_unknown : int;
  mutable ct_high_water : int;
  (* placement overlap counters die with each crashed instance too *)
  mutable ct_ov_seen : int;
  mutable ct_ov_rejected : int;
  mutable ct_ov_quarantined : int;
  mutable ct_ov_overwrites : int;
  (* containment counters (multi path only) *)
  mutable ct_anomalies : int;
  mutable ct_sig_damage : int;
  mutable ct_quarantines : int;
  mutable ct_quar_drops : int;
  mutable ct_poisoned : int;
  mutable ct_sheds_refused : int;
}

let crash_track () =
  {
    ct_crashes = 0;
    ct_restores = 0;
    ct_bad = 0;
    ct_over_budget = 0;
    ct_roundtrip = 0;
    ct_corrupted = false;
    ct_failed = 0;
    ct_dups = 0;
    ct_chunks = 0;
    ct_nacks = 0;
    ct_reacks = 0;
    ct_evictions = 0;
    ct_aborts = 0;
    ct_sheds = 0;
    ct_shed_elems = 0;
    ct_gcs = 0;
    ct_displaced = 0;
    ct_unknown = 0;
    ct_high_water = 0;
    ct_ov_seen = 0;
    ct_ov_rejected = 0;
    ct_ov_quarantined = 0;
    ct_ov_overwrites = 0;
    ct_anomalies = 0;
    ct_sig_damage = 0;
    ct_quarantines = 0;
    ct_quar_drops = 0;
    ct_poisoned = 0;
    ct_sheds_refused = 0;
  }

let absorb_overlap ct (os : Labelling.Placement.overlap_stats) =
  ct.ct_ov_seen <- ct.ct_ov_seen + os.Labelling.Placement.os_conflicts_seen;
  ct.ct_ov_rejected <-
    ct.ct_ov_rejected + os.Labelling.Placement.os_conflicts_rejected;
  ct.ct_ov_quarantined <-
    ct.ct_ov_quarantined + os.Labelling.Placement.os_quarantined;
  ct.ct_ov_overwrites <-
    ct.ct_ov_overwrites + os.Labelling.Placement.os_verified_overwrites

(* The codec must be a fixpoint on every image it produced itself; a
   re-encode that fails to decode back to the same value means the
   snapshot format lies about something. *)
let codec_roundtrip_ok img =
  match Persist.decode_endpoint (Persist.encode_endpoint img) with
  | Ok img' -> img' = img
  | Error _ -> false

(* The Corrupt_restore mutation: flip one byte that the image claims is
   already {e verified}.  Verified bytes are exactly the ones recovery
   must preserve faithfully — their TPDUs sit in the ledger, so the
   sender will never retransmit them and no later traffic can heal the
   damage.  Returns [None] when the image holds no verified byte yet
   (the caller retries at the next restore). *)
let corrupt_receiver_image ~elem_size (ri : Persist.receiver_image) =
  match ri.Persist.ri_verified with
  | [] -> None
  | (vs, _) :: _ ->
      let rec go = function
        | [] -> None
        | (sn, data) :: rest ->
            let elems = Bytes.length data / elem_size in
            if vs >= sn && vs < sn + elems then begin
              let data = Bytes.copy data in
              let i = (vs - sn) * elem_size in
              Bytes.set data i
                (Char.chr (Char.code (Bytes.get data i) lxor 0x01));
              Some ((sn, data) :: rest)
            end
            else Option.map (fun tl -> (sn, data) :: tl) (go rest)
      in
      Option.map
        (fun placed -> { ri with Persist.ri_placed = placed })
        (go ri.Persist.ri_placed)

let corrupt_image ~elem_size (img : Persist.endpoint_image) =
  match img with
  | Persist.Single si ->
      Option.map
        (fun rx -> Persist.Single { si with Persist.s_rx = rx })
        (corrupt_receiver_image ~elem_size si.Persist.s_rx)
  | Persist.Multi conns ->
      let rec go = function
        | [] -> None
        | (c : Persist.conn_image) :: rest -> (
            match
              Option.bind c.Persist.ci_live (corrupt_receiver_image ~elem_size)
            with
            | Some rx -> Some ({ c with Persist.ci_live = Some rx } :: rest)
            | None -> Option.map (fun tl -> c :: tl) (go rest))
      in
      Option.map (fun cs -> Persist.Multi cs) (go conns)

(* Recovery-safety probe on a freshly restored endpoint's re-export: a
   T.ID both in the ledger and among the in-flight verifier images means
   the endpoint would verify (and deliver) a TPDU it already promised
   was done — double delivery waiting to happen. *)
let ledger_in_flight_clash ~acked (ri : Persist.receiver_image) =
  List.exists
    (fun (ti : Edc.Verifier.tpdu_image) ->
      List.mem ti.Edc.Verifier.ti_t_id acked)
    ri.Persist.ri_tpdus

(* Snapshots are scheduled up front at k·snap_period for every k that
   lands before the last crash (later ones could never be consulted),
   so the store never re-arms itself and cannot keep the engine alive. *)
let schedule_snapshots engine (s : Schedule.t) store export_now =
  if s.Schedule.crashes <> [] && s.Schedule.snap_period > 0.0 then begin
    let last =
      List.fold_left
        (fun acc (c : Schedule.crash) -> Float.max acc c.Schedule.cr_time)
        0.0 s.Schedule.crashes
    in
    let k = ref 1 in
    while float_of_int !k *. s.Schedule.snap_period <= last do
      let at = float_of_int !k *. s.Schedule.snap_period in
      Netsim.Engine.schedule engine ~delay:at (fun () ->
          match export_now () with
          | Some img -> Persist.Store.snapshot store img
          | None -> ());
      incr k
    done
  end

(* The Overlap_clobber mutation: a forged TPDU with a {e correct} WSC-2
   seal over divergent bytes, covering exactly the first data chunk's
   connection range and injected ahead of it.  The forged TPDU verifies
   first and locks its bytes under first-verified-wins; the real TPDU
   still passes its own parity over its own chunks, so the receiver
   completes with the forged bytes in that window — the data mismatch
   the oracle must catch.  Forging it requires authoring a {e valid}
   seal, which no honest network element can do: that is what makes
   this a stack-bug mutation rather than an adversary mode. *)
let clobber_tid_base = 900_000

let forge_clobber b =
  let open Labelling in
  match Wire.decode_packet b with
  | Error _ -> None
  | Ok chunks -> (
      match List.find_opt Chunk.is_data chunks with
      | None -> None
      | Some c -> (
          let h = c.Chunk.header in
          let payload =
            Bytes.init (Bytes.length c.Chunk.payload) (fun i ->
                Char.chr (Char.code (Bytes.get c.Chunk.payload i) lxor 0xFF))
          in
          match
            Chunk.data ~size:h.Header.size
              ~c:
                (Ftuple.v ~id:h.Header.c.Ftuple.id ~sn:h.Header.c.Ftuple.sn
                   ())
              ~t:(Ftuple.v ~st:true ~id:clobber_tid_base ~sn:0 ())
              ~x:(Ftuple.v ~id:clobber_tid_base ~sn:0 ())
              payload
          with
          | Error _ -> None
          | Ok d -> (
              match Edc.Encoder.seal [ d ] with
              | Error _ -> None
              | Ok ed -> (
                  match (Wire.encode_packet [ d ], Wire.encode_packet [ ed ])
                  with
                  | Ok p1, Ok p2 -> Some [ p1; p2 ]
                  | _ -> None))))

let run_single ~mutation ~trace ?(overlap_salt = 0) (s : Schedule.t) =
  let config = Schedule.config_of s in
  let config =
    if mutation = Shed_clobber then shed_clobber_config config else config
  in
  let data = Schedule.data_of s in
  let engine = Netsim.Engine.create ~seed:s.seed () in
  let trec fmt = make_trec engine trace fmt in
  let receiver = ref None in
  let sender = ref None in
  (* A crashed endpoint neither receives nor buffers: the valve discards
     everything that arrives at the door inside a crash window. *)
  let crash_valve =
    Netsim.Blackout.create engine
      ~windows:
        (List.map
           (fun (c : Schedule.crash) ->
             (c.Schedule.cr_time, c.Schedule.cr_time +. c.Schedule.cr_restart))
           s.Schedule.crashes)
      ~deliver:
        (let deliver_rx =
           if s.Schedule.fastpath then CT.Receiver.ingest
           else CT.Receiver.on_packet
         in
         fun b ->
           match !receiver with Some r -> deliver_rx r b | None -> ())
      ()
  in
  (* The overlap adversary taps the door (before its own injections, so
     it never feeds on itself) and injects straight past the tap. *)
  let overlapper = ref None in
  let clobbered = ref 0 in
  let to_receiver_raw b =
    (match !overlapper with
    | Some o -> Netsim.Overlapper.observe o b
    | None -> ());
    (if mutation = Overlap_clobber && !clobbered = 0 then
       match forge_clobber b with
       | Some pkts ->
           clobbered := 1;
           trec "MUTATION forged clobber TPDU ahead of packet";
           List.iter (Netsim.Blackout.send crash_valve) pkts
       | None -> ());
    Netsim.Blackout.send crash_valve b
  in
  let p = build_plumbing ~mutation ~trace s engine to_receiver_raw in
  (match s.Schedule.overlap with
  | None -> ()
  | Some o ->
      overlapper :=
        Some
          (Netsim.Overlapper.create engine
             ~seed:(s.seed lxor 0x0A51A9 lxor overlap_salt)
             ~rate:o.Schedule.ov_rate ~stop:o.Schedule.ov_stop
             ~dup:o.Schedule.ov_dup ~forge:o.Schedule.ov_forge
             ~resplit:o.Schedule.ov_resplit
             ~inject:(fun b -> Netsim.Blackout.send crash_valve b)
             ()));
  let probe0 = probe_start () in
  let reverse_send =
    build_reverse ~trace s engine (fun b ->
        match !sender with Some t -> CT.Sender.on_packet t b | None -> ())
  in
  let expected_elems =
    CT.expected_elements config ~data_len:(Bytes.length data)
  in
  let store = Persist.Store.create () in
  let persist_opt =
    if s.Schedule.crashes <> [] then
      Some (fun ev -> Persist.Store.append store ev)
    else None
  in
  let rx =
    CT.Receiver.create engine config ?persist:persist_opt
      ~send_ack:reverse_send ~capacity:(`Exact expected_elems) ()
  in
  receiver := Some rx;
  let ct = crash_track () in
  let fp = ref Transport.Flowcache.zero_stats in
  let absorb rx =
    fp := Transport.Flowcache.add_stats !fp (CT.Receiver.fastpath_stats rx);
    let v = CT.Receiver.verifier_stats rx in
    ct.ct_failed <- ct.ct_failed + v.Edc.Verifier.tpdus_failed;
    ct.ct_dups <- ct.ct_dups + v.Edc.Verifier.duplicates;
    ct.ct_chunks <- ct.ct_chunks + v.Edc.Verifier.chunks_seen;
    ct.ct_nacks <- ct.ct_nacks + CT.Receiver.nacks_sent rx;
    ct.ct_reacks <- ct.ct_reacks + CT.Receiver.reacks_sent rx;
    ct.ct_evictions <- ct.ct_evictions + CT.Receiver.evictions rx;
    ct.ct_aborts <- ct.ct_aborts + CT.Receiver.aborts_received rx;
    ct.ct_high_water <-
      max ct.ct_high_water
        (CT.Receiver.governor_stats rx).Transport.Governor.high_water;
    absorb_overlap ct (CT.Receiver.overlap_stats rx)
  in
  schedule_snapshots engine s store (fun () ->
      Option.map
        (fun rx ->
          Persist.Single
            {
              Persist.s_acked = CT.Receiver.acked_tids rx;
              s_rx = CT.Receiver.export rx;
            })
        !receiver);
  let restore_now (c : Schedule.crash) =
    let t0 = Unix.gettimeofday () in
    match
      Persist.Store.recover ~elem_size:s.Schedule.elem_size
        ~quota_elems:expected_elems
        ~empty:
          (Persist.Single
             {
               Persist.s_acked = [];
               s_rx = Persist.empty_receiver ~conn:config.CT.conn_id;
             })
        store
    with
    | Error msg ->
        ct.ct_bad <- ct.ct_bad + 1;
        trec "RESTORE failed: %s" msg
    | Ok (img, torn) ->
        if torn then trec "RESTORE journal torn, tail discarded";
        if not (codec_roundtrip_ok img) then
          ct.ct_roundtrip <- ct.ct_roundtrip + 1;
        let img =
          if mutation = Corrupt_restore && not ct.ct_corrupted then
            match corrupt_image ~elem_size:s.Schedule.elem_size img with
            | Some img' ->
                ct.ct_corrupted <- true;
                incr p.mutated;
                trec "MUTATION corrupt restored image";
                img'
            | None -> img
          else img
        in
        (match img with
        | Persist.Multi _ -> ct.ct_bad <- ct.ct_bad + 1
        | Persist.Single si ->
            let rx =
              CT.Receiver.restore engine config ?persist:persist_opt
                ~send_ack:reverse_send ~capacity:(`Exact expected_elems)
                si.Persist.s_rx ~acked_tids:si.Persist.s_acked
            in
            if Obs.enabled then
              Obs.Metrics.observe_s Persist.m_recovery
                (Unix.gettimeofday () -. t0);
            (* Re-export must reproduce the image (structural round
               trip), unless the restore itself evicted state — then the
               budget legitimately trimmed the image. *)
            let re =
              {
                Persist.s_acked = CT.Receiver.acked_tids rx;
                s_rx = CT.Receiver.export rx;
              }
            in
            if CT.Receiver.evictions rx = 0 && Persist.Single re <> img then
              ct.ct_roundtrip <- ct.ct_roundtrip + 1;
            if ledger_in_flight_clash ~acked:re.Persist.s_acked re.Persist.s_rx
            then ct.ct_bad <- ct.ct_bad + 1;
            let gov = CT.Receiver.governor_stats rx in
            if
              s.Schedule.state_budget > 0
              && gov.Transport.Governor.accounted_bytes
                 > s.Schedule.state_budget
            then ct.ct_over_budget <- ct.ct_over_budget + 1;
            ct.ct_restores <- ct.ct_restores + 1;
            CT.Receiver.reannounce rx;
            receiver := Some rx;
            trec "RESTART receiver after %.4fs down" c.Schedule.cr_restart)
  in
  List.iter
    (fun (c : Schedule.crash) ->
      Netsim.Engine.schedule engine ~delay:c.Schedule.cr_time (fun () ->
          match !receiver with
          | None -> ()
          | Some rx ->
              ct.ct_crashes <- ct.ct_crashes + 1;
              trec "CRASH receiver, down %.4fs" c.Schedule.cr_restart;
              absorb rx;
              CT.Receiver.quiesce rx;
              receiver := None);
      Netsim.Engine.schedule engine
        ~delay:(c.Schedule.cr_time +. c.Schedule.cr_restart)
        (fun () ->
          match !receiver with None -> restore_now c | Some _ -> ()))
    s.Schedule.crashes;
  let tx = CT.Sender.create engine config ~send:p.forward_send ~data () in
  sender := Some tx;
  CT.Sender.start tx;
  Netsim.Engine.run ~until:horizon engine;
  let rx = match !receiver with Some r -> r | None -> rx in
  absorb rx;
  let delivered = CT.Receiver.contents rx in
  let n = Bytes.length data in
  let shed_spans = CT.Receiver.shed_spans rx in
  (* Byte-exact outside the honoured shed spans; the oracle separately
     checks that every observed shed was contractually permitted. *)
  let ok =
    (not (CT.Sender.gave_up tx))
    && CT.Receiver.complete rx
    && Bytes.length delivered >= n
    &&
    match shed_spans with
    | [] -> Bytes.equal (Bytes.sub delivered 0 n) data
    | spans ->
        CT.equal_outside_sheds ~elem_size:s.Schedule.elem_size ~spans
          ~expected:data ~delivered
  in
  trec "run end: ok=%b pending=%d" ok (Netsim.Engine.pending engine);
  let gov = CT.Receiver.governor_stats rx in
  {
    ok;
    complete = CT.Receiver.complete rx;
    gave_up = CT.Sender.gave_up tx;
    finished = CT.Sender.finished tx;
    delivered;
    delivered_elems = CT.Receiver.delivered_elems rx;
    retransmissions = CT.Sender.retransmissions tx;
    sack_retransmissions = CT.Sender.sack_retransmissions tx;
    nacks_sent = ct.ct_nacks;
    tpdus_sent = CT.Sender.tpdus_sent tx;
    packets_sent = CT.Sender.packets_sent tx;
    (* Whole-epoch counts: pass totals carry across restarts via
       [epoch_passes]; the other counters are accumulated over every
       receiver instance the run went through. *)
    verifier =
      {
        Edc.Verifier.tpdus_passed = CT.Receiver.epoch_passes rx;
        tpdus_failed = ct.ct_failed;
        duplicates = ct.ct_dups;
        chunks_seen = ct.ct_chunks;
      };
    verifier_in_flight = CT.Receiver.verifier_in_flight rx;
    stashed_tpdus = CT.Receiver.stashed_tpdus rx;
    engine_pending = Netsim.Engine.pending engine;
    sim_time = Netsim.Engine.now engine;
    forward = p.forward_stats ();
    dropper = p.dropper_stats ();
    gateways_malformed = p.gateways_malformed ();
    mutated_packets = !(p.mutated) + !clobbered;
    reacks_sent = ct.ct_reacks;
    aborts_sent = CT.Sender.aborts_sent tx;
    aborts_received = ct.ct_aborts;
    sheds_sent = CT.Sender.sheds_sent tx;
    sheds_received = CT.Receiver.sheds_received rx;
    shed_elems = CT.Receiver.shed_elems rx;
    shed_spans;
    receiver_evictions = ct.ct_evictions;
    conn_gcs = 0;
    displaced_conns = 0;
    unknown_drops = 0;
    state_high_water = ct.ct_high_water;
    state_accounted = gov.Transport.Governor.accounted_bytes;
    flood_injected = 0;
    rtt_samples = CT.Sender.rtt_samples tx;
    max_txs_at_rtt_sample = CT.Sender.max_txs_at_rtt_sample tx;
    final_rto = CT.Sender.current_rto tx;
    crashes_injected = ct.ct_crashes;
    restores = ct.ct_restores;
    recovery_bad = ct.ct_bad;
    restore_over_budget = ct.ct_over_budget;
    roundtrip_failures = ct.ct_roundtrip;
    snapshots_taken = Persist.Store.snapshots_taken store;
    journal_records = Persist.Store.journal_records store;
    multi = None;
    metrics = probe_end probe0;
    overlap_conflicts_seen = ct.ct_ov_seen;
    overlap_conflicts_rejected = ct.ct_ov_rejected;
    overlap_quarantined = ct.ct_ov_quarantined;
    verified_overwrites = ct.ct_ov_overwrites;
    overlap_injected =
      (match !overlapper with
      | Some o -> (Netsim.Overlapper.stats o).Netsim.Overlapper.injected
      | None -> 0);
    permuted = None;
    fastpath_stats = !fp;
    coherence = None;
    anomalies = 0;
    sig_damage = 0;
    quarantines = 0;
    quarantine_drops = 0;
    conns_poisoned = 0;
    sheds_refused = 0;
    byz = None;
    blast = None;
  }

(* T.ID spaces of successive epochs of one connection must be disjoint
   (a stale full-TPDU retransmission from a closed epoch must never be
   mistakable for new-epoch data). *)
let epoch_tid_stride = 200_000

(* One (connection, epoch) transfer as the driver-side endpoint sees
   it. *)
type ep = {
  ep_conn : int;
  ep_epoch : int;
  mutable ep_tx : CT.Sender.t option;
  mutable ep_done : bool;
  mutable ep_gave_up : bool;
}

let run_multi ~mutation ~trace (s : Schedule.t) =
  let config = Schedule.config_of s in
  let config =
    if mutation = Shed_clobber then shed_clobber_config config else config
  in
  let engine = Netsim.Engine.create ~seed:s.seed () in
  let trec fmt = make_trec engine trace fmt in
  let multi = ref None in
  let crash_valve =
    Netsim.Blackout.create engine
      ~windows:
        (List.map
           (fun (c : Schedule.crash) ->
             (c.Schedule.cr_time, c.Schedule.cr_time +. c.Schedule.cr_restart))
           s.Schedule.crashes)
      ~deliver:
        (let deliver_m =
           if s.Schedule.fastpath then Transport.Multi.ingest
           else Transport.Multi.on_packet
         in
         fun b ->
           match !multi with Some m -> deliver_m m b | None -> ())
      ()
  in
  (* The byzantine peer taps the door for its replay ring (before its
     own injections, so it never feeds on itself). *)
  let byzantine = ref None in
  let to_receiver_raw b =
    (match !byzantine with
    | Some bz -> Netsim.Byzantine.observe bz b
    | None -> ());
    Netsim.Blackout.send crash_valve b
  in
  let p = build_plumbing ~mutation ~trace s engine to_receiver_raw in
  let probe0 = probe_start () in
  (* Reverse traffic is demultiplexed to the per-connection sender by
     the C.ID every control chunk carries. *)
  let senders : (int, CT.Sender.t) Hashtbl.t = Hashtbl.create 8 in
  let demux_reverse b =
    match Labelling.Wire.decode_packet b with
    | Error _ -> ()
    | Ok chunks ->
        List.iter
          (fun ch ->
            if not (Labelling.Chunk.is_terminator ch) then
              let cid =
                ch.Labelling.Chunk.header.Labelling.Header.c
                  .Labelling.Ftuple.id
              in
              match Hashtbl.find_opt senders cid with
              | Some tx -> CT.Sender.on_chunk tx ch
              | None -> ())
          chunks
  in
  let reverse_send = build_reverse ~trace s engine demux_reverse in
  let quota_elems =
    CT.expected_elements config ~data_len:s.Schedule.data_len
  in
  let store = Persist.Store.create () in
  let persist_opt =
    if s.Schedule.crashes <> [] then
      Some (fun ev -> Persist.Store.append store ev)
    else None
  in
  let max_conns = s.Schedule.connections + 8 in
  (* The byz-clobber mutation switches the quarantine off wholesale —
     at creation and at every restore, so a crash cannot silently
     re-arm the defense mid-mutation. *)
  let anomaly_budget =
    match mutation with Byz_clobber -> Some 0 | _ -> None
  in
  let m =
    Transport.Multi.create engine ~config ~quota_elems ~max_conns
      ?persist:persist_opt ?anomaly_budget ~send_ack:reverse_send ()
  in
  multi := Some m;
  let ct = crash_track () in
  let fp = ref Transport.Flowcache.zero_stats in
  let absorb m =
    (let f = Transport.Multi.fastpath_stats m in
     fp :=
       Transport.Flowcache.add_stats !fp
         (Transport.Flowcache.add_stats f.Transport.Multi.fp_conn
            f.Transport.Multi.fp_tpdu));
    ct.ct_reacks <- ct.ct_reacks + Transport.Multi.reacks_sent m;
    ct.ct_evictions <- ct.ct_evictions + Transport.Multi.evictions m;
    ct.ct_aborts <- ct.ct_aborts + Transport.Multi.aborts_received m;
    ct.ct_sheds <- ct.ct_sheds + Transport.Multi.sheds_received m;
    ct.ct_shed_elems <- ct.ct_shed_elems + Transport.Multi.shed_elems m;
    ct.ct_gcs <- ct.ct_gcs + Transport.Multi.conn_gcs m;
    ct.ct_displaced <- ct.ct_displaced + Transport.Multi.displaced_conns m;
    ct.ct_unknown <- ct.ct_unknown + Transport.Multi.unknown_drops m;
    ct.ct_high_water <-
      max ct.ct_high_water
        (Transport.Multi.governor_stats m).Transport.Governor.high_water;
    ct.ct_anomalies <- ct.ct_anomalies + Transport.Multi.anomalies m;
    ct.ct_sig_damage <- ct.ct_sig_damage + Transport.Multi.sig_damage m;
    ct.ct_quarantines <- ct.ct_quarantines + Transport.Multi.quarantines m;
    ct.ct_quar_drops <- ct.ct_quar_drops + Transport.Multi.quarantine_drops m;
    ct.ct_poisoned <- ct.ct_poisoned + Transport.Multi.conns_poisoned m;
    ct.ct_sheds_refused <-
      ct.ct_sheds_refused + Transport.Multi.sheds_refused m;
    absorb_overlap ct (Transport.Multi.overlap_stats m)
  in
  schedule_snapshots engine s store (fun () ->
      Option.map
        (fun m -> Persist.Multi (Transport.Multi.export m))
        !multi);
  let restore_now () =
    let t0 = Unix.gettimeofday () in
    match
      Persist.Store.recover ~elem_size:s.Schedule.elem_size ~quota_elems
        ~empty:(Persist.Multi []) store
    with
    | Error msg ->
        ct.ct_bad <- ct.ct_bad + 1;
        trec "RESTORE failed: %s" msg
    | Ok (img, torn) ->
        if torn then trec "RESTORE journal torn, tail discarded";
        if not (codec_roundtrip_ok img) then
          ct.ct_roundtrip <- ct.ct_roundtrip + 1;
        let img =
          if mutation = Corrupt_restore && not ct.ct_corrupted then
            match corrupt_image ~elem_size:s.Schedule.elem_size img with
            | Some img' ->
                ct.ct_corrupted <- true;
                incr p.mutated;
                trec "MUTATION corrupt restored image";
                img'
            | None -> img
          else img
        in
        (match img with
        | Persist.Single _ -> ct.ct_bad <- ct.ct_bad + 1
        | Persist.Multi conns ->
            let m' =
              Transport.Multi.restore engine ~config ~quota_elems ~max_conns
                ?persist:persist_opt ?anomaly_budget ~send_ack:reverse_send
                conns
            in
            if Obs.enabled then
              Obs.Metrics.observe_s Persist.m_recovery
                (Unix.gettimeofday () -. t0);
            let re = Transport.Multi.export m' in
            if
              Transport.Multi.evictions m' = 0
              && Transport.Multi.displaced_conns m' = 0
              && Transport.Multi.conn_gcs m' = 0
              && Persist.Multi re <> img
            then ct.ct_roundtrip <- ct.ct_roundtrip + 1;
            List.iter
              (fun (ci : Persist.conn_image) ->
                match ci.Persist.ci_live with
                | Some ri ->
                    if ledger_in_flight_clash ~acked:ci.Persist.ci_acked ri
                    then ct.ct_bad <- ct.ct_bad + 1
                | None -> ())
              re;
            let gov = Transport.Multi.governor_stats m' in
            if
              s.Schedule.state_budget > 0
              && gov.Transport.Governor.accounted_bytes
                 > s.Schedule.state_budget
            then ct.ct_over_budget <- ct.ct_over_budget + 1;
            ct.ct_restores <- ct.ct_restores + 1;
            Transport.Multi.reannounce m';
            multi := Some m';
            trec "RESTART demultiplexer")
  in
  List.iter
    (fun (c : Schedule.crash) ->
      Netsim.Engine.schedule engine ~delay:c.Schedule.cr_time (fun () ->
          match !multi with
          | None -> ()
          | Some m ->
              ct.ct_crashes <- ct.ct_crashes + 1;
              trec "CRASH demultiplexer, down %.4fs" c.Schedule.cr_restart;
              absorb m;
              Transport.Multi.teardown m;
              multi := None);
      Netsim.Engine.schedule engine
        ~delay:(c.Schedule.cr_time +. c.Schedule.cr_restart)
        (fun () -> match !multi with None -> restore_now () | Some _ -> ()))
    s.Schedule.crashes;
  (* Plan the (connection, epoch) transfers: every connection one epoch,
     connection 1 a second one when the schedule re-opens it. *)
  let eps =
    List.concat_map
      (fun i ->
        let conn = i + 1 in
        let epochs = if conn = 1 && s.Schedule.reopen then 2 else 1 in
        List.init epochs (fun e ->
            {
              ep_conn = conn;
              ep_epoch = e;
              ep_tx = None;
              ep_done = false;
              ep_gave_up = false;
            }))
      (List.init s.Schedule.connections Fun.id)
  in
  let start_ep ep =
    let tx =
      CT.Sender.create engine
        { config with CT.conn_id = ep.ep_conn }
        ~first_tid:(ep.ep_epoch * epoch_tid_stride)
        ~announce_open:true ~send:p.forward_send
        ~data:(Schedule.data_of_conn s ~conn:ep.ep_conn ~epoch:ep.ep_epoch)
        ()
    in
    ep.ep_tx <- Some tx;
    Hashtbl.replace senders ep.ep_conn tx;
    trec "start epoch (%d,%d)" ep.ep_conn ep.ep_epoch;
    CT.Sender.start tx
  in
  (* Epoch 0 of every connection starts together; later epochs start
     only after the previous one finished (their Open performs the
     close-and-reopen).  The explicit Close is sent once per connection
     after its {e final} epoch, so no Close is ever in flight while a
     reopen could race it. *)
  List.iter (fun ep -> if ep.ep_epoch = 0 then start_ep ep) eps;
  let close_sent : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let send_close conn =
    if not (Hashtbl.mem close_sent conn) then begin
      Hashtbl.add close_sent conn ();
      trec "close connection %d" conn;
      match
        Labelling.Wire.encode_packet
          [ Labelling.Connection.(signal_chunk ~conn_id:conn Close) ]
      with
      | Ok b -> p.forward_send b
      | Error _ -> ()
    end
  in
  let last_of conn =
    List.fold_left
      (fun acc ep -> if ep.ep_conn = conn then max acc ep.ep_epoch else acc)
      0 eps
  in
  let poll_dt = Float.max 0.002 (s.Schedule.rto /. 4.0) in
  (* A finished epoch hands over after one RTO of settling time, so its
     last retransmitted packets (and the next epoch's Open) cannot
     arrive out of order across the multipath skew. *)
  let rec poll () =
    List.iter
      (fun ep ->
        match ep.ep_tx with
        | Some tx when (not ep.ep_done) && CT.Sender.finished tx ->
            ep.ep_done <- true;
            ep.ep_gave_up <- CT.Sender.gave_up tx;
            trec "epoch (%d,%d) finished gave_up=%b" ep.ep_conn ep.ep_epoch
              ep.ep_gave_up;
            if ep.ep_epoch = last_of ep.ep_conn then send_close ep.ep_conn
            else begin
              let next =
                List.find
                  (fun e ->
                    e.ep_conn = ep.ep_conn && e.ep_epoch = ep.ep_epoch + 1)
                  eps
              in
              Netsim.Engine.schedule engine ~delay:s.Schedule.rto (fun () ->
                  start_ep next)
            end
        | _ -> ())
      eps;
    if List.exists (fun ep -> not ep.ep_done) eps then
      Netsim.Engine.schedule engine ~delay:poll_dt poll
  in
  Netsim.Engine.schedule engine ~delay:poll_dt poll;
  (* The flood adversary injects straight at the receiver door. *)
  let adversary =
    match s.Schedule.flood with
    | None -> None
    | Some f ->
        Some
          (Adversary.create engine ~seed:(s.seed lxor 0xF100D)
             ~rate:f.Schedule.flood_rate ~stop:f.Schedule.flood_stop
             ~legit_conns:(List.init s.Schedule.connections (fun i -> i + 1))
             ~bogus_conns:f.Schedule.flood_conns ~elem_size:s.Schedule.elem_size
             ~inject:p.door ())
  in
  (* The byzantine peer: own RNG (so removing it leaves every honest
     draw untouched), forward injection straight past its own tap at
     the door, reverse injection straight into the sender demux —
     bypassing the shared ACK link, so forged reverse traffic cannot
     perturb honest ACK serialisation.  Both properties together make
     the blast-radius re-run a true counterfactual. *)
  (match s.Schedule.byz with
  | None -> ()
  | Some b ->
      byzantine :=
        Some
          (Netsim.Byzantine.create engine ~seed:(s.seed lxor 0xB12A97)
             ~rate:b.Schedule.bz_rate ~stop:b.Schedule.bz_stop
             ~conns:b.Schedule.bz_conns
             ~legit_conns:(List.init s.Schedule.connections (fun i -> i + 1))
             ~elem_size:s.Schedule.elem_size ~acks:b.Schedule.bz_acks
             ~sheds:b.Schedule.bz_sheds ~replay:b.Schedule.bz_replay
             ~garbage:b.Schedule.bz_garbage
             ~inject:(fun b -> Netsim.Blackout.send crash_valve b)
             ~inject_ack:demux_reverse ()));
  Netsim.Engine.run ~until:horizon engine;
  let m = match !multi with Some m -> m | None -> m in
  absorb m;
  (* Join the driver-side epochs with the receiver-side reports. *)
  let mo_epochs =
    List.map
      (fun ep ->
        (* Join by epoch identity (the Open's announced first C.SN),
           not by list position: the receiver legitimately drops an
           epoch in which no TPDU ever verified (a fully-given-up
           transfer), which would shift every later epoch under a
           positional join. *)
        let reports = Transport.Multi.epochs m ~conn_id:ep.ep_conn in
        let want = Some (ep.ep_epoch * epoch_tid_stride) in
        let r =
          List.find_opt
            (fun (r : Transport.Multi.epoch_report) ->
              r.Transport.Multi.open_csn = want)
            reports
        in
        {
          e_conn = ep.ep_conn;
          e_epoch = ep.ep_epoch;
          e_gave_up = ep.ep_gave_up;
          e_complete =
            (match r with
            | Some r -> r.Transport.Multi.complete
            | None -> false);
          e_delivered =
            Option.map (fun r -> r.Transport.Multi.delivered) r;
        })
      eps
  in
  let epoch_ok e =
    let data = Schedule.data_of_conn s ~conn:e.e_conn ~epoch:e.e_epoch in
    let n = Bytes.length data in
    match e.e_delivered with
    | Some d when Bytes.length d >= n -> Bytes.equal (Bytes.sub d 0 n) data
    | Some _ | None -> false
  in
  let ok =
    List.for_all (fun e -> e.e_gave_up || (e.e_complete && epoch_ok e)) mo_epochs
    && List.for_all (fun ep -> ep.ep_done) eps
  in
  trec "run end: ok=%b pending=%d" ok (Netsim.Engine.pending engine);
  let sum f = List.fold_left (fun acc ep ->
      match ep.ep_tx with Some tx -> acc + f tx | None -> acc) 0 eps
  in
  let gov = Transport.Multi.governor_stats m in
  let first_epoch = List.hd mo_epochs in
  (* Archived epochs release their verifiers, so no meaningful aggregate
     exists; the oracle's verifier-stats checks are single-path only. *)
  let verifier =
    {
      Edc.Verifier.tpdus_passed = 0;
      tpdus_failed = 0;
      duplicates = 0;
      chunks_seen = 0;
    }
  in
  (* The endpoint-side view of the byzantine connections at quiescence.
     The quarantine ledger survives crashes (it is persisted per
     connection image), so [conn_stats] on the final incarnation is the
     whole run's story. *)
  let byz_report =
    match !byzantine with
    | None -> None
    | Some bz ->
        let conn_view cid =
          match Transport.Multi.conn_stats m ~conn_id:cid with
          | Some cs ->
              {
                bc_conn = cid;
                bc_epochs = cs.Transport.Multi.cs_epochs;
                bc_hist_bytes = cs.Transport.Multi.cs_hist_bytes;
                bc_quarantines = cs.Transport.Multi.cs_quarantines;
                bc_boxed = cs.Transport.Multi.cs_quarantined;
              }
          | None ->
              {
                bc_conn = cid;
                bc_epochs = 0;
                bc_hist_bytes = 0;
                bc_quarantines = 0;
                bc_boxed = false;
              }
        in
        let honest_quarantined =
          List.fold_left
            (fun acc i ->
              match Transport.Multi.conn_stats m ~conn_id:(i + 1) with
              | Some cs
                when cs.Transport.Multi.cs_quarantines > 0
                     || cs.Transport.Multi.cs_poisoned ->
                  acc + 1
              | _ -> acc)
            0
            (List.init s.Schedule.connections Fun.id)
        in
        Some
          {
            bo_stats = Netsim.Byzantine.stats bz;
            bo_conns = List.map conn_view (Netsim.Byzantine.conn_ids bz);
            bo_honest_quarantined = honest_quarantined;
            bo_sender_bogus_acks = sum CT.Sender.bogus_acks;
          }
  in
  {
    ok;
    complete = List.for_all (fun e -> e.e_gave_up || e.e_complete) mo_epochs;
    gave_up = List.exists (fun e -> e.e_gave_up) mo_epochs;
    finished = List.for_all (fun ep -> ep.ep_done) eps;
    delivered =
      (match first_epoch.e_delivered with Some d -> d | None -> Bytes.empty);
    delivered_elems = 0;
    retransmissions = sum CT.Sender.retransmissions;
    sack_retransmissions = sum CT.Sender.sack_retransmissions;
    nacks_sent = 0;
    tpdus_sent = sum CT.Sender.tpdus_sent;
    packets_sent = sum CT.Sender.packets_sent;
    verifier;
    verifier_in_flight = Transport.Multi.live_in_flight m;
    stashed_tpdus = Transport.Multi.live_stashed m;
    engine_pending = Netsim.Engine.pending engine;
    sim_time = Netsim.Engine.now engine;
    forward = p.forward_stats ();
    dropper = p.dropper_stats ();
    gateways_malformed = p.gateways_malformed ();
    mutated_packets = !(p.mutated);
    reacks_sent = ct.ct_reacks;
    aborts_sent = sum CT.Sender.aborts_sent;
    aborts_received = ct.ct_aborts;
    sheds_sent = sum CT.Sender.sheds_sent;
    sheds_received = ct.ct_sheds;
    shed_elems = ct.ct_shed_elems;
    shed_spans = [];
    receiver_evictions = ct.ct_evictions;
    conn_gcs = ct.ct_gcs;
    displaced_conns = ct.ct_displaced;
    unknown_drops = ct.ct_unknown;
    state_high_water = ct.ct_high_water;
    state_accounted = gov.Transport.Governor.accounted_bytes;
    flood_injected =
      (match adversary with
      | Some a -> (Adversary.stats a).Adversary.injected
      | None -> 0);
    rtt_samples = sum CT.Sender.rtt_samples;
    max_txs_at_rtt_sample =
      List.fold_left
        (fun acc ep ->
          match ep.ep_tx with
          | Some tx -> max acc (CT.Sender.max_txs_at_rtt_sample tx)
          | None -> acc)
        0 eps;
    final_rto = s.Schedule.rto;
    crashes_injected = ct.ct_crashes;
    restores = ct.ct_restores;
    recovery_bad = ct.ct_bad;
    restore_over_budget = ct.ct_over_budget;
    roundtrip_failures = ct.ct_roundtrip;
    snapshots_taken = Persist.Store.snapshots_taken store;
    journal_records = Persist.Store.journal_records store;
    multi =
      Some
        {
          mo_epochs;
          mo_live_conns = Transport.Multi.live_conns m;
          mo_known_conns = List.length (Transport.Multi.known_conns m);
        };
    metrics = probe_end probe0;
    overlap_conflicts_seen = ct.ct_ov_seen;
    overlap_conflicts_rejected = ct.ct_ov_rejected;
    overlap_quarantined = ct.ct_ov_quarantined;
    verified_overwrites = ct.ct_ov_overwrites;
    overlap_injected = 0;
    permuted = None;
    fastpath_stats = !fp;
    coherence = None;
    anomalies = ct.ct_anomalies;
    sig_damage = ct.ct_sig_damage;
    quarantines = ct.ct_quarantines;
    quarantine_drops = ct.ct_quar_drops;
    conns_poisoned = ct.ct_poisoned;
    sheds_refused = ct.ct_sheds_refused;
    byz = byz_report;
    blast = None;
  }

let run ?(mutation = No_mutation) ?trace (s : Schedule.t) =
  let o =
    if Schedule.multi_mode s then begin
      let o = run_multi ~mutation ~trace s in
      match s.Schedule.byz with
      | None -> o
      | Some _ ->
          (* Blast-radius evidence: the identical (seed, schedule,
             mutation) with the byzantine peer removed.  The peer's RNG
             and wire paths are disjoint from every honest draw, so the
             honest traffic is byte-identical — the oracle demands the
             honest per-epoch outcomes agree exactly.  Forced through
             [run_multi] even when the byz-free schedule would qualify
             for the single path: the comparison must differ by the
             adversary alone, not by the endpoint topology. *)
          let o2 =
            run_multi ~mutation ~trace:None { s with Schedule.byz = None }
          in
          {
            o with
            blast =
              Some
                {
                  b_epochs =
                    (match o2.multi with
                    | Some m -> m.mo_epochs
                    | None -> []);
                };
          }
    end
    else
      let o = run_single ~mutation ~trace s in
      match s.Schedule.overlap with
      | None -> o
      | Some _ ->
          (* Overlap-determinism evidence: re-run with a different
             overlap-injection seed, so the adversary's arrival order and
             mix over the same transfer are permuted.  Whatever the
             interleaving, a completed transfer must deliver byte-identical
             data — the oracle compares the two deliveries. *)
          let o2 = run_single ~mutation ~trace:None ~overlap_salt:0x7E12A5 s in
          {
            o with
            permuted =
              Some
                {
                  p_delivered = o2.delivered;
                  p_complete = o2.complete;
                  p_gave_up = o2.gave_up;
                };
          }
  in
  if not s.Schedule.fastpath then o
  else
    (* Cache-coherence evidence: the identical (seed, schedule) with the
       flow cache off.  Determinism makes the wire identical packet for
       packet, so any observable divergence is the cache's doing — the
       oracle demands equal completion flags and byte-identical delivery
       for every epoch. *)
    let s_off = { s with Schedule.fastpath = false } in
    let o_off =
      if Schedule.multi_mode s_off then run_multi ~mutation ~trace:None s_off
      else run_single ~mutation ~trace:None s_off
    in
    {
      o with
      coherence =
        Some
          {
            c_complete = o_off.complete;
            c_gave_up = o_off.gave_up;
            c_delivered = o_off.delivered;
            c_epochs = Option.map (fun m -> m.mo_epochs) o_off.multi;
          };
    }
