(** Runs the real stack — Framer → packing → multipath wire → gateway
    refragmentation chain → congestion dropper → Receiver (virtual
    reassembly, WSC-2 verification, immediate placement) — under one
    {!Schedule}, and reports everything the {!Oracle} observes.

    Multi-connection schedules ({!Schedule.multi_mode}) run one
    {!Transport.Multi} receiver demultiplexing per-connection senders
    (with optional close-and-reopen of connection 1 and a
    {!Adversary} flood at the receiver door); single-connection
    schedules run the classic point-to-point pair.  The scheduled
    forward outage and ACK black hole wrap the respective directions in
    both modes.

    Deterministic: the same (seed, schedule, mutation) triple replays
    the same execution event for event. *)

type mutation =
  | No_mutation
  | Flip_every of int
      (** XOR one byte of every [n]th packet at the receiver door — an
          injected stack bug the oracle must catch *)
  | Dup_every of int
  | Drop_every of int
  | Corrupt_restore
      (** flip one already-verified byte in the first snapshot restored
          after a crash — a corrupted persisted image the oracle must
          catch (its TPDU is in the ledger, so no retransmission can
          heal it) *)
  | Overlap_clobber
      (** forge a {e validly sealed} TPDU with divergent bytes over the
          first observed data chunk's range and inject it ahead — it
          verifies first, locks the range, and the first-verified-wins
          policy then rejects the sender's real bytes, so the delivered
          data diverges from the sent data: the overlap-consistency /
          data-mismatch checks must catch it.  (No honest network
          element can author a valid seal, which is why this is a
          mutation rather than an {!Netsim.Overlapper} mode.) *)
  | Shed_clobber
      (** mis-configure {e both} endpoints to treat TPDU 0 as expendable
          (classify it [Sheddable 1] and arm the sender's shed policy)
          and swallow every packet carrying TPDU-0 data at the receiver
          door, so the stack sheds a TPDU the schedule's shed contract
          declares Critical/Normal — the shed-safety check must catch
          the missing bytes.  Forced directly into the endpoint configs,
          so it survives the [shed=none] shrink. *)
  | Byz_clobber
      (** disable the anomaly-scoring quarantine ([anomaly_budget = 0]
          at creation {e and} at every restore) so the byzantine peer
          runs unboxed: its Open/Close flapping accumulates
          per-connection epochs without bound, the isolation-budget
          violation the oracle must catch.  Proves the containment is
          the defense's doing, not an accident of the schedule. *)

val mutation_to_string : mutation -> string
val mutation_of_string : string -> mutation option

type epoch_obs = {
  e_conn : int;
  e_epoch : int;
  e_gave_up : bool;  (** the sender abandoned TPDUs in this epoch *)
  e_complete : bool;
  e_delivered : bytes option;
      (** the epoch's receiver buffer; [None] if the receiver never saw
          the epoch *)
}

type multi_obs = {
  mo_epochs : epoch_obs list;
  mo_live_conns : int;  (** connections still live at quiescence *)
  mo_known_conns : int;  (** connections ever admitted (incl. flood) *)
}

(** Deltas of the process-wide [Obs] metric registry over exactly one
    run, feeding the oracle's metrics-driven checks.  All zeros when the
    observability layer is compiled out ([Obs.enabled = false]). *)
type metrics_probe = {
  mp_verified : int;  (** [edc_tpdus_passed_total] delta over the run *)
  mp_acked : int;  (** [transport_acks_total] delta over the run *)
  mp_governor_peak : int;
      (** high-water mark of [governor_occupancy_bytes] over the run *)
}

(** What the second, permuted run of an overlap schedule observed: the
    same (seed, schedule) re-executed with a different overlap-injection
    seed, so the adversary's arrival order and mode mix are permuted
    over the identical legitimate transfer. *)
type permuted_obs = {
  p_delivered : bytes;
  p_complete : bool;
  p_gave_up : bool;
}

(** What the cache-off re-run of a fastpath schedule observed: the same
    (seed, schedule) re-executed with [fastpath = false], so every
    packet takes the decode-everything slow path over an identical wire.
    The [fastpath-coherence] oracle row demands it agree with the
    primary run on every delivery observable. *)
type coherence_obs = {
  c_complete : bool;
  c_gave_up : bool;
  c_delivered : bytes;
  c_epochs : epoch_obs list option;
      (** multi runs: the off-run's per-epoch join, for (conn, epoch)
          pairwise comparison *)
}

(** The endpoint-side containment view of one byzantine connection at
    quiescence (the quarantine ledger is persisted per connection, so
    this is the whole run's story even across crashes). *)
type byz_conn_obs = {
  bc_conn : int;
  bc_epochs : int;  (** epochs the peer ever started on this C.ID *)
  bc_hist_bytes : int;  (** archived-epoch bytes parked on the endpoint *)
  bc_quarantines : int;  (** admissions revoked *)
  bc_boxed : bool;  (** still boxed (or poisoned) at quiescence *)
}

(** What the byzantine adversary did and what it cost the endpoint —
    the [isolation-budget] oracle row bounds {!byz_conn_obs} and the
    [honest-immunity] row demands [bo_honest_quarantined = 0]. *)
type byz_obs = {
  bo_stats : Netsim.Byzantine.stats;
  bo_conns : byz_conn_obs list;
  bo_honest_quarantined : int;
      (** honest connections ever boxed or poisoned — must stay 0:
          only provably-authored anomalies are scored *)
  bo_sender_bogus_acks : int;
      (** fabricated ACK/NACKs the honest senders detected and
          ignored *)
}

(** The honest per-epoch outcomes of the blast-radius re-run: the same
    (seed, schedule, mutation) with the byzantine peer removed.  The
    peer's RNG is its own and its packets bypass the shared links, so
    the honest wire is byte-identical across the two runs; the
    [blast-radius] oracle row demands the honest outcomes agree
    exactly. *)
type blast_obs = { b_epochs : epoch_obs list }

type observation = {
  ok : bool;  (** delivered prefix equals sent data (every epoch) *)
  complete : bool;  (** connection placement buffer fully covered *)
  gave_up : bool;
  finished : bool;
  delivered : bytes;
  delivered_elems : int;
  retransmissions : int;
  sack_retransmissions : int;
  nacks_sent : int;
  tpdus_sent : int;
  packets_sent : int;
  verifier : Edc.Verifier.stats;
      (** single-path only; zeroed in multi mode (archived epochs
          release their verifiers) *)
  verifier_in_flight : int;  (** leak probe *)
  stashed_tpdus : int;  (** leak probe *)
  engine_pending : int;  (** > 0 after the horizon means lockup *)
  sim_time : float;
  forward : Netsim.Link.stats;  (** aggregate over the multipath *)
  dropper : Netsim.Dropper.stats option;
  gateways_malformed : int;
  mutated_packets : int;
  reacks_sent : int;  (** re-acknowledgements of already-done TPDUs *)
  aborts_sent : int;  (** sender give-ups signalled via [Abort_tpdu] *)
  aborts_received : int;  (** aborts honoured by the receiver *)
  sheds_sent : int;  (** sender shed decisions signalled via [Shed_tpdu] *)
  sheds_received : int;  (** sheds honoured by the receiver *)
  shed_elems : int;  (** elements covered by honoured sheds *)
  shed_spans : (int * int) list;
      (** the receiver's honoured shed spans [(first_elem, elems)],
          ascending; empty in multi mode (sheds are single-transfer
          only) *)
  receiver_evictions : int;  (** governor deadline/budget evictions *)
  conn_gcs : int;  (** whole connections reclaimed by deadline *)
  displaced_conns : int;  (** live connections displaced by admission *)
  unknown_drops : int;  (** chunks for never-admitted connections *)
  state_high_water : int;  (** governor high-water mark, bytes *)
  state_accounted : int;  (** bytes still accounted at quiescence *)
  flood_injected : int;  (** adversary packets injected *)
  rtt_samples : int;  (** RTT samples taken (Karn-filtered) *)
  max_txs_at_rtt_sample : int;
      (** highest transmission count of any sampled TPDU; > 1 breaks
          Karn's rule *)
  final_rto : float;  (** sender's RTO at the end of the run *)
  crashes_injected : int;  (** scheduled crashes actually executed *)
  restores : int;  (** successful endpoint restores *)
  recovery_bad : int;
      (** recovery-safety probe failures: an unreadable snapshot, an
          image of the wrong endpoint shape, or a restored endpoint
          whose ledger and in-flight verifier state overlap *)
  restore_over_budget : int;
      (** restores whose re-derived governor occupancy exceeded the
          configured state budget *)
  roundtrip_failures : int;
      (** snapshot codec fixpoint or export/restore round-trip
          mismatches observed at restores *)
  snapshots_taken : int;  (** full snapshots written to the store *)
  journal_records : int;  (** journal records appended over the run *)
  multi : multi_obs option;  (** present iff the schedule is multi *)
  metrics : metrics_probe;
  overlap_conflicts_seen : int;
      (** occupied-with-different-bytes placement collisions *)
  overlap_conflicts_rejected : int;
      (** collisions discarded because the incumbent bytes were already
          WSC-2-verified (first-verified-wins) *)
  overlap_quarantined : int;
      (** fresh-vs-fresh collisions held back for the writer's verdict *)
  verified_overwrites : int;
      (** verified bytes replaced by different verified bytes — must be
          zero in every profile (the overlap-consistency check) *)
  overlap_injected : int;  (** overlap-adversary packets put on the wire *)
  permuted : permuted_obs option;  (** present iff the schedule overlaps *)
  fastpath_stats : Transport.Flowcache.stats;
      (** flow-cache counters, both layers summed, accumulated across
          crash incarnations; all zero on slow-path runs *)
  coherence : coherence_obs option;
      (** present iff the schedule ran the fast path *)
  anomalies : int;
      (** protocol anomalies attributed to connections, scored and
          unscored alike *)
  sig_damage : int;
      (** structurally valid signal chunks whose payload failed parity *)
  quarantines : int;  (** admissions revoked across all connections *)
  quarantine_drops : int;  (** events refused from boxed connections *)
  conns_poisoned : int;  (** connections torn down by exception bulkheads *)
  sheds_refused : int;  (** shed signals refused by the local classifier *)
  byz : byz_obs option;  (** present iff the schedule runs the adversary *)
  blast : blast_obs option;  (** present iff [byz] is *)
}

val horizon : float
(** Simulated-time bound on a run; far beyond the slowest legitimate
    completion or give-up. *)

val run : ?mutation:mutation -> ?trace:Trace.t -> Schedule.t -> observation
