(** Runs the real stack — Framer → packing → multipath wire → gateway
    refragmentation chain → congestion dropper → Receiver (virtual
    reassembly, WSC-2 verification, immediate placement) — under one
    {!Schedule}, and reports everything the {!Oracle} observes.

    Deterministic: the same (seed, schedule, mutation) triple replays
    the same execution event for event. *)

type mutation =
  | No_mutation
  | Flip_every of int
      (** XOR one byte of every [n]th packet at the receiver door — an
          injected stack bug the oracle must catch *)
  | Dup_every of int
  | Drop_every of int

val mutation_to_string : mutation -> string
val mutation_of_string : string -> mutation option

type observation = {
  ok : bool;  (** delivered prefix equals sent data *)
  complete : bool;  (** connection placement buffer fully covered *)
  gave_up : bool;
  finished : bool;
  delivered : bytes;
  delivered_elems : int;
  retransmissions : int;
  sack_retransmissions : int;
  nacks_sent : int;
  tpdus_sent : int;
  packets_sent : int;
  verifier : Edc.Verifier.stats;
  verifier_in_flight : int;  (** leak probe *)
  stashed_tpdus : int;  (** leak probe *)
  engine_pending : int;  (** > 0 after the horizon means lockup *)
  sim_time : float;
  forward : Netsim.Link.stats;  (** aggregate over the multipath *)
  dropper : Netsim.Dropper.stats option;
  gateways_malformed : int;
  mutated_packets : int;
}

val horizon : float
(** Simulated-time bound on a run; far beyond the slowest legitimate
    completion or give-up. *)

val run : ?mutation:mutation -> ?trace:Trace.t -> Schedule.t -> observation
