(** Connection-flood adversary: injects forged traffic at the receiver
    door at a fixed average rate until a stop time.

    The mix models an attacker who can spoof chunks but not observe the
    legitimate streams: forged [Open] signals for bogus connection ids,
    data for never-established connections, never-completing partial
    TPDUs on {e legitimate} connections (the state-exhaustion attack the
    receiver's governor must absorb), and forged [Abort_tpdu] signals.
    Spoofed [Close]/[Open] of a live legitimate connection is out of
    scope — indistinguishable without authentication, which the paper's
    labelling layer does not provide.

    Injection is scheduled on the simulation engine and is fully
    deterministic under ([seed], schedule). *)

type stats = { injected : int; forged_opens : int; forged_tpdus : int }

type t

val create :
  Netsim.Engine.t ->
  seed:int ->
  rate:float ->
  stop:float ->
  legit_conns:int list ->
  bogus_conns:int ->
  elem_size:int ->
  inject:(bytes -> unit) ->
  unit ->
  t
(** Arms itself immediately; fires roughly every [1/rate] seconds
    (jittered deterministically) until [stop]. *)

val stats : t -> stats
