type violation = { code : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.code v.detail

let violation_to_string v = Printf.sprintf "[%s] %s" v.code v.detail

(* Zero-fill the element runs of [spans] so byte comparison ignores
   exactly the shed spans and nothing else. *)
let mask_sheds ~elem_size ~spans b =
  let b = Bytes.copy b in
  List.iter
    (fun (first, len) ->
      let off = first * elem_size and n = len * elem_size in
      if off >= 0 && n >= 0 && off + n <= Bytes.length b then
        Bytes.fill b off n '\000')
    spans;
  b

(* Where the first delivered byte differs from the model, for diagnosis. *)
let first_diff a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let rec go i =
    if i >= n then n
    else if Bytes.get a i <> Bytes.get b i then i
    else go (i + 1)
  in
  go 0

(* Faults that can legitimately exhaust a bounded sender: a dead reverse
   path (no ACK ever returns), or a whole-TPDU congestion dropper, which
   taints a TPDU at a random packet each round so a no-SACK sender only
   lands the tail (and the ED chunk) on a drop-free round. *)
let starvable (s : Schedule.t) =
  s.Schedule.ack_blackhole <> None
  ||
  match s.Schedule.dropper with
  | Some { Schedule.drop_mode = Netsim.Dropper.Whole_tpdu; _ } -> true
  | Some _ | None -> false

let check ~(schedule : Schedule.t) ~(model : Model.t)
    ~(observation : Driver.observation) =
  let s = schedule and m = model and o = observation in
  let vs = ref [] in
  let fail code fmt =
    Printf.ksprintf (fun detail -> vs := { code; detail } :: !vs) fmt
  in
  (* Liveness: every schedule must terminate — either the transfer
     completes or the sender gives up, and all timers wind down.  A
     give-up is legitimate only under a starvation fault (ACK black
     hole, whole-TPDU dropper); every other generated fault is
     recoverable by retransmission. *)
  if o.engine_pending > 0 then
    fail "lockup" "%d events still pending at the %.0fs horizon"
      o.engine_pending Driver.horizon;
  if o.gave_up && not (starvable s) then
    fail "gave-up"
      "sender abandoned a TPDU with no starvation fault in the schedule";
  if (not o.gave_up) && not o.finished then
    fail "unfinished" "sender neither completed nor gave up";
  (* Karn's rule: an RTT sample taken from a retransmitted TPDU is
     ambiguous (the ACK may answer any earlier copy) and must never be
     folded into SRTT. *)
  if o.max_txs_at_rtt_sample > 1 then
    fail "karn" "RTT sampled from a TPDU transmitted %d times"
      o.max_txs_at_rtt_sample;
  if s.Schedule.rto_adaptive && o.rtt_samples > 0 then begin
    if o.final_rto > s.Schedule.rto +. 1e-9 then
      fail "rto-range" "adaptive RTO %.6f exceeds configured ceiling %.6f"
        o.final_rto s.Schedule.rto;
    if o.final_rto < 2e-3 -. 1e-12 then
      fail "rto-range" "adaptive RTO %.6f below floor" o.final_rto
  end;
  (* The receiver state governor's contract: accounted state never
     exceeds the budget at any event (the high-water mark is sampled
     after every accounting step), and quiescence leaves nothing
     accounted. *)
  if s.Schedule.state_budget > 0 && o.state_high_water > s.Schedule.state_budget
  then
    fail "state-budget" "governor high water %d exceeds budget %d"
      o.state_high_water s.Schedule.state_budget;
  if o.state_accounted > 0 then
    fail "state-residue" "%d bytes still accounted after quiescence"
      o.state_accounted;
  (* Leaks: at quiescence the verifier and the placement stash must be
     empty unconditionally — completed TPDUs release their state,
     abandoned and corrupt-residue TPDUs are reclaimed by the governor's
     deadline sweep, including on give-up runs. *)
  if o.verifier_in_flight > 0 then
    fail "leak-verifier" "%d TPDUs still in flight after quiescence"
      o.verifier_in_flight;
  if o.stashed_tpdus > 0 then
    fail "leak-stash" "%d TPDU stashes retained after quiescence"
      o.stashed_tpdus;
  (* SACK plumbing only runs when asked for. *)
  if not s.Schedule.sack then begin
    if o.nacks_sent > 0 then
      fail "sack-off" "%d NACKs sent with SACK disabled" o.nacks_sent;
    if o.sack_retransmissions > 0 then
      fail "sack-off" "%d selective retransmissions with SACK disabled"
        o.sack_retransmissions
  end;
  (* Quiet wire: with no fault enabled the protocol must be silent —
     no retransmission (the RTO is an overestimate by construction, and
     the adaptive RTO never drops below 2×SRTT), no gap report, no
     duplicate, no re-acknowledgement.  Single-path only: a faultless
     multi-connection run can still retransmit legitimately (an epoch's
     first packets racing their own Open across jittered paths). *)
  if Schedule.faultless s && o.multi = None then begin
    if o.retransmissions > 0 then
      fail "quiet-retrans" "%d RTO retransmissions on a faultless run"
        o.retransmissions;
    if o.sack_retransmissions > 0 then
      fail "quiet-sack" "%d selective retransmissions on a faultless run"
        o.sack_retransmissions;
    if o.nacks_sent > 0 then
      fail "quiet-nack" "%d NACKs on a faultless run" o.nacks_sent;
    if o.verifier.Edc.Verifier.duplicates > 0 then
      fail "quiet-dup" "%d duplicate chunks seen on a faultless run"
        o.verifier.Edc.Verifier.duplicates;
    if o.reacks_sent > 0 then
      fail "quiet-reack" "%d re-ACKs on a faultless run" o.reacks_sent
  end;
  (* Metrics-driven checks, fed by the driver's per-run deltas of the
     [Obs] registry (all zeros when the layer is compiled out, so both
     checks degrade to trivially true).
     1. Verify/ACK agreement: every TPDU the verifier passes is freshly
        acknowledged exactly once — a passed-but-unACKed (or
        ACKed-but-unpassed) TPDU means the transport and the error
        detection layer disagree about what was delivered.
     2. Occupancy bound: the governor's occupancy gauge, sampled after
        every accounting step, must never have exceeded the configured
        budget during the run. *)
  if o.metrics.Driver.mp_verified <> o.metrics.Driver.mp_acked then
    fail "metrics-verify-count"
      "%d TPDUs passed verification but %d fresh ACKs were sent"
      o.metrics.Driver.mp_verified o.metrics.Driver.mp_acked;
  if
    s.Schedule.state_budget > 0
    && o.metrics.Driver.mp_governor_peak > s.Schedule.state_budget
  then
    fail "metrics-occupancy"
      "governor occupancy gauge peaked at %d bytes, budget is %d"
      o.metrics.Driver.mp_governor_peak s.Schedule.state_budget;
  (* Crash recovery.  Every scheduled crash must be executed and
     answered by exactly one successful restore; a restore that fails,
     rebuilds the wrong endpoint shape, or leaves a T.ID both in the
     ledger and in the in-flight verifier state is a recovery-safety
     violation (the last one is double delivery waiting to happen).
     Restored state must re-fit the governor budget, and the snapshot
     codec must round-trip every image it produced itself. *)
  if List.length s.Schedule.crashes <> o.crashes_injected then
    fail "recovery-safety" "%d crashes scheduled but %d executed"
      (List.length s.Schedule.crashes)
      o.crashes_injected;
  if o.crashes_injected <> o.restores then
    fail "recovery-safety" "%d crashes executed but %d restores succeeded"
      o.crashes_injected o.restores;
  if o.recovery_bad > 0 then
    fail "recovery-safety"
      "%d recovery-safety probe failures (unreadable image, wrong endpoint \
       shape, or ledger/in-flight overlap)"
      o.recovery_bad;
  if o.restore_over_budget > 0 then
    fail "recovery-budget"
      "%d restores left the governor over the configured state budget"
      o.restore_over_budget;
  if o.roundtrip_failures > 0 then
    fail "snapshot-roundtrip"
      "%d snapshot round-trip mismatches observed at restore"
      o.roundtrip_failures;
  (* Overlap policy.  Two checks run in {e every} profile:
     1. Consistency — once a byte range is WSC-2-verified it is
        immutable: a conflicting write that replaces verified bytes
        (even with other verified bytes) means delivery can depend on
        arrival order, so [verified_overwrites] must be exactly zero.
     2. Determinism — for overlap schedules the driver re-runs the
        same (seed, schedule) with a permuted overlap-injection order;
        when both runs complete, they must deliver byte-identical
        data.  Either the adversary's bytes never reach delivery, or
        the policy is order-sensitive — and then this catches it. *)
  if o.verified_overwrites > 0 then
    fail "overlap-consistency"
      "%d verified bytes were overwritten by conflicting data \
       (first-verified-wins violated; %d conflicts seen, %d rejected)"
      o.verified_overwrites o.overlap_conflicts_seen
      o.overlap_conflicts_rejected;
  (match o.permuted with
  | Some p
    when o.complete && (not o.gave_up) && p.Driver.p_complete
         && not p.Driver.p_gave_up ->
      if not (Bytes.equal o.delivered p.Driver.p_delivered) then
        fail "overlap-determinism"
          "permuting overlap arrival order changed delivery at byte %d"
          (first_diff o.delivered p.Driver.p_delivered)
  | Some _ | None -> ());
  (* Flow-cache coherence: the fast path must be pure acceleration.
     For fastpath schedules the driver re-ran the identical (seed,
     schedule) with the cache off, so the wire is the same packet for
     packet and any divergence below is the cache's doing: completion
     flags must match, and delivery must be byte-identical — the single
     buffer on point-to-point runs, every (connection, epoch) pair on
     demultiplexed runs.  Crash-restart schedules run through here too,
     so a cache surviving a restore it should not survive shows up as a
     divergent epoch. *)
  (match o.coherence with
  | None -> ()
  | Some c ->
      if c.Driver.c_complete <> o.complete || c.Driver.c_gave_up <> o.gave_up
      then
        fail "fastpath-coherence"
          "cache-off re-run diverged: complete %b vs %b, gave-up %b vs %b \
           (cache on vs off)"
          o.complete c.Driver.c_complete o.gave_up c.Driver.c_gave_up;
      match (o.multi, c.Driver.c_epochs) with
      | None, _ ->
          if not (Bytes.equal o.delivered c.Driver.c_delivered) then
            fail "fastpath-coherence"
              "cache on/off deliveries diverge at byte %d"
              (first_diff o.delivered c.Driver.c_delivered)
      | Some mo, Some eps ->
          List.iter
            (fun (e : Driver.epoch_obs) ->
              match
                List.find_opt
                  (fun (e' : Driver.epoch_obs) ->
                    e'.Driver.e_conn = e.Driver.e_conn
                    && e'.Driver.e_epoch = e.Driver.e_epoch)
                  eps
              with
              | None ->
                  fail "fastpath-coherence"
                    "connection %d epoch %d missing from the cache-off \
                     re-run"
                    e.Driver.e_conn e.Driver.e_epoch
              | Some e' ->
                  if e'.Driver.e_complete <> e.Driver.e_complete then
                    fail "fastpath-coherence"
                      "connection %d epoch %d: complete %b with the cache, \
                       %b without"
                      e.Driver.e_conn e.Driver.e_epoch e.Driver.e_complete
                      e'.Driver.e_complete;
                  match (e.Driver.e_delivered, e'.Driver.e_delivered) with
                  | Some a, Some b when not (Bytes.equal a b) ->
                      fail "fastpath-coherence"
                        "connection %d epoch %d: cache on/off deliveries \
                         diverge at byte %d"
                        e.Driver.e_conn e.Driver.e_epoch (first_diff a b)
                  | (Some _ | None), (Some _ | None) -> ())
            mo.Driver.mo_epochs
      | Some _, None ->
          fail "fastpath-coherence"
            "demultiplexed run but the cache-off re-run reported no epochs");
  (* Partial reliability, part one: sheds are legal only under a shed
     contract.  A receiver that honours a shed with no contract in the
     schedule has thrown away bytes the model calls mandatory — the
     shed-clobber mutation trips exactly this. *)
  if s.Schedule.shed = None && (o.sheds_received > 0 || o.sheds_sent > 0) then
    fail "shed-safety" "%d sheds honoured (%d signalled) with no shed contract"
      o.sheds_received o.sheds_sent;
  (match o.multi with
  | None ->
      (* Partial reliability, part two: every span the receiver honoured
         as shed must be one the contract declares sheddable (a shed of
         Critical/Normal elements is data loss whatever the wire did),
         and sheds must agree with their own bookkeeping. *)
      let sheddable = Model.sheddable_spans m s in
      List.iter
        (fun (first, len) ->
          if not (List.mem (first, len) sheddable) then
            fail "shed-safety"
              "receiver shed span (%d+%d) outside the shed contract" first
              len)
        o.shed_spans;
      if List.length o.shed_spans <> o.sheds_received then
        fail "shed-safety" "%d shed spans recorded but %d sheds honoured"
          (List.length o.shed_spans)
          o.sheds_received;
      (* Delivery: the delivered buffer must equal the model's
         expectation byte for byte — placement by label, across any
         amount of refragmentation and disorder, reconstructs the stream
         exactly.  Under a shed contract the comparison is masked over
         exactly the honoured shed spans (shed-liveness itself is the
         [incomplete]/[gave-up] pair: a shed schedule is never
         starvable, so the stream must still complete). *)
      if not o.gave_up then begin
        if not o.complete then
          fail "incomplete" "placement holds %d of %d elements"
            o.delivered_elems m.Model.elems;
        (* Immediate placement means elements of a shed TPDU that landed
           before the shed are already in the buffer, so the count may
           sit anywhere between all-shed-elements-missing and none. *)
        if
          o.delivered_elems < m.Model.elems - o.shed_elems
          || o.delivered_elems > m.Model.elems
        then
          fail "element-count"
            "delivered %d elements, model expects %d less at most %d shed"
            o.delivered_elems m.Model.elems o.shed_elems;
        if Bytes.length o.delivered <> Bytes.length m.Model.expected then
          fail "data-mismatch" "delivered %d bytes, model expects %d"
            (Bytes.length o.delivered)
            (Bytes.length m.Model.expected)
        else begin
          let elem_size = m.Model.elem_size and spans = o.shed_spans in
          let want = mask_sheds ~elem_size ~spans m.Model.expected in
          let got = mask_sheds ~elem_size ~spans o.delivered in
          if not (Bytes.equal got want) then
            fail "data-mismatch"
              "delivered buffer differs at byte %d (outside shed spans)"
              (first_diff got want)
        end
      end;
      if o.delivered_elems > m.Model.elems then
        fail "conservation" "placed %d elements, only %d exist"
          o.delivered_elems m.Model.elems;
      (* Without corruption, a TPDU may fail verification only because
         the governor evicted it or the sender aborted it — never
         because intact data looked damaged.  The overlap adversary is
         a third legitimate source of failures (its forged TPDUs and
         poisoned parities are {e built} to fail), so the check only
         applies when it is absent.  Honoured sheds abandon in-flight
         verifier state exactly like aborts and join the allowance. *)
      if s.Schedule.corrupt = 0.0 && s.Schedule.overlap = None then begin
        if
          o.verifier.Edc.Verifier.tpdus_failed
          > o.receiver_evictions + o.aborts_received + o.sheds_received
        then
          fail "clean-fail"
            "%d TPDUs failed verification with corruption off (%d \
             evictions + %d aborts + %d sheds)"
            o.verifier.Edc.Verifier.tpdus_failed o.receiver_evictions
            o.aborts_received o.sheds_received;
        if o.gateways_malformed > 0 then
          fail "clean-malformed"
            "%d packets unparseable at gateways with corruption off"
            o.gateways_malformed
      end;
      (* TPDU accounting: a fixed-size framer cuts a known number of
         TPDUs, and each is either verified exactly once or (under a
         shed contract) honoured as shed — never both, never neither. *)
      if not o.gave_up then begin
        if
          (not s.Schedule.adaptive)
          && o.verifier.Edc.Verifier.tpdus_passed
             <> m.Model.n_tpdus - o.sheds_received
        then
          fail "tpdu-count"
            "%d TPDUs passed, model expects exactly %d (%d shed)"
            o.verifier.Edc.Verifier.tpdus_passed m.Model.n_tpdus
            o.sheds_received;
        if
          s.Schedule.adaptive
          && o.verifier.Edc.Verifier.tpdus_passed < m.Model.n_tpdus
        then
          fail "tpdu-count" "%d TPDUs passed, adaptive floor is %d"
            o.verifier.Edc.Verifier.tpdus_passed m.Model.n_tpdus
      end
  | Some mo ->
      (* Multi-connection delivery: every planned (connection, epoch)
         stream must arrive complete and byte-exact unless its sender
         legitimately gave up.  Flood traffic, displacement and GC must
         never corrupt a legitimate stream — only delay it. *)
      List.iter
        (fun (e : Driver.epoch_obs) ->
          let expected =
            match List.assoc_opt e.Driver.e_conn m.Model.streams with
            | Some epochs -> List.nth_opt epochs e.Driver.e_epoch
            | None -> None
          in
          match expected with
          | None ->
              fail "epoch-plan" "no model stream for conn %d epoch %d"
                e.Driver.e_conn e.Driver.e_epoch
          | Some want ->
              if e.Driver.e_gave_up then begin
                if not (starvable s) then
                  fail "gave-up"
                    "conn %d epoch %d abandoned with no starvation fault"
                    e.Driver.e_conn e.Driver.e_epoch
              end
              else begin
                if not e.Driver.e_complete then
                  fail "epoch-incomplete" "conn %d epoch %d not complete"
                    e.Driver.e_conn e.Driver.e_epoch;
                match e.Driver.e_delivered with
                | None ->
                    fail "epoch-missing"
                      "conn %d epoch %d never reached the receiver"
                      e.Driver.e_conn e.Driver.e_epoch
                | Some got ->
                    let n = Bytes.length want in
                    if
                      Bytes.length got < n
                      || not (Bytes.equal (Bytes.sub got 0 n) want)
                    then
                      fail "epoch-mismatch"
                        "conn %d epoch %d differs at byte %d" e.Driver.e_conn
                        e.Driver.e_epoch
                        (first_diff got want)
              end)
        mo.Driver.mo_epochs;
      (* Lifecycle hygiene: explicit Close (legitimate connections) and
         the deadline GC (flood connections) must leave nothing live. *)
      if mo.Driver.mo_live_conns > 0 then
        fail "multi-live" "%d connections still live after quiescence"
          mo.Driver.mo_live_conns);
  (* Byzantine containment (DESIGN §10).  The exception bulkhead must
     never have fired in any profile: a poisoned connection means some
     input made the endpoint throw, which the bulkhead contained — but
     the throw itself is the bug to surface. *)
  if o.conns_poisoned > 0 then
    fail "bulkhead-poisoned"
      "%d connections poisoned by exception bulkheads (the endpoint threw \
       while processing their traffic)"
      o.conns_poisoned;
  (match o.byz with
  | None -> ()
  | Some b ->
      (* Honest immunity: only provably-authored anomalies are scored,
         so no byzantine input may ever talk an honest connection into
         the penalty box. *)
      if b.Driver.bo_honest_quarantined > 0 then
        fail "honest-immunity"
          "%d honest connections were quarantined under byzantine fire"
          b.Driver.bo_honest_quarantined;
      (* Isolation budget, part one — hard state caps per byzantine
         connection.  Quarantine bounds an attacker to ~8 epochs per
         admission and the re-admission backoff bounds admissions within
         the attack window, with a wide margin below 64; each archived
         flap epoch parks at most one quota-sized placement buffer. *)
      let epoch_buf_cap = s.Schedule.data_len + (s.Schedule.tpdu_elems * s.Schedule.elem_size) in
      List.iter
        (fun (bc : Driver.byz_conn_obs) ->
          if bc.Driver.bc_epochs > 64 then
            fail "isolation-budget"
              "byzantine conn %d started %d epochs (cap 64)"
              bc.Driver.bc_conn bc.Driver.bc_epochs;
          if bc.Driver.bc_hist_bytes > 64 * epoch_buf_cap then
            fail "isolation-budget"
              "byzantine conn %d parked %d archived bytes (cap %d)"
              bc.Driver.bc_conn bc.Driver.bc_hist_bytes
              (64 * epoch_buf_cap))
        b.Driver.bo_conns;
      (* Isolation budget, part two — the defense actually fired.  A
         connection accumulates at most 8 epochs per scoring life (the
         9th scored Open trips the box first), and a restore resets the
         score at most once per crash; epochs beyond that bound are
         only reachable through a quarantine-and-readmit cycle, so at
         least one revocation must have been counted.  This is the row
         that catches the byz-clobber mutation: with the budget
         disabled the peer flaps far past the bound and the revocation
         count stays zero. *)
      List.iter
        (fun (bc : Driver.byz_conn_obs) ->
          if
            bc.Driver.bc_epochs > 8 * (1 + o.restores)
            && o.quarantines = 0
          then
            fail "isolation-budget"
              "byzantine conn %d started %d epochs (> %d) yet no admission \
               was ever revoked — the quarantine never fired"
              bc.Driver.bc_conn bc.Driver.bc_epochs
              (8 * (1 + o.restores)))
        b.Driver.bo_conns;
      (* Blast radius: the byz-free re-run (same seed, schedule and
         mutation; the adversary's RNG and wire paths are disjoint from
         every honest draw) must report identical honest per-epoch
         outcomes.  Any divergence means byzantine traffic leaked into
         honest delivery — containment failed. *)
      match o.blast with
      | None ->
          fail "blast-radius"
            "byzantine schedule ran without its byz-free counterfactual"
      | Some bl -> (
          match o.multi with
          | None ->
              fail "blast-radius"
                "byzantine schedule ran outside the multi path"
          | Some mo ->
              List.iter
                (fun (e : Driver.epoch_obs) ->
                  match
                    List.find_opt
                      (fun (e' : Driver.epoch_obs) ->
                        e'.Driver.e_conn = e.Driver.e_conn
                        && e'.Driver.e_epoch = e.Driver.e_epoch)
                      bl.Driver.b_epochs
                  with
                  | None ->
                      fail "blast-radius"
                        "conn %d epoch %d missing from the byz-free re-run"
                        e.Driver.e_conn e.Driver.e_epoch
                  | Some e' ->
                      if
                        e'.Driver.e_complete <> e.Driver.e_complete
                        || e'.Driver.e_gave_up <> e.Driver.e_gave_up
                      then
                        fail "blast-radius"
                          "conn %d epoch %d: complete %b / gave-up %b under \
                           byzantine fire, %b / %b without"
                          e.Driver.e_conn e.Driver.e_epoch e.Driver.e_complete
                          e.Driver.e_gave_up e'.Driver.e_complete
                          e'.Driver.e_gave_up;
                      match (e.Driver.e_delivered, e'.Driver.e_delivered) with
                      | Some a, Some b when not (Bytes.equal a b) ->
                          fail "blast-radius"
                            "conn %d epoch %d: delivery under byzantine fire \
                             diverges from the byz-free run at byte %d"
                            e.Driver.e_conn e.Driver.e_epoch (first_diff a b)
                      | Some _, None | None, Some _ ->
                          fail "blast-radius"
                            "conn %d epoch %d: delivered on one side of the \
                             byz-free comparison only"
                            e.Driver.e_conn e.Driver.e_epoch
                      | (Some _ | None), _ -> ())
                mo.Driver.mo_epochs));
  List.rev !vs
