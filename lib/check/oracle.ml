type violation = { code : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.code v.detail

let violation_to_string v = Printf.sprintf "[%s] %s" v.code v.detail

(* Where the first delivered byte differs from the model, for diagnosis. *)
let first_diff a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let rec go i =
    if i >= n then n
    else if Bytes.get a i <> Bytes.get b i then i
    else go (i + 1)
  in
  go 0

let check ~(schedule : Schedule.t) ~(model : Model.t)
    ~(observation : Driver.observation) =
  let s = schedule and m = model and o = observation in
  let vs = ref [] in
  let fail code fmt =
    Printf.ksprintf (fun detail -> vs := { code; detail } :: !vs) fmt
  in
  (* Liveness: every schedule must terminate — either the transfer
     completes or the sender gives up, and all timers wind down. *)
  if o.engine_pending > 0 then
    fail "lockup" "%d events still pending at the %.0fs horizon"
      o.engine_pending Driver.horizon;
  if o.gave_up then
    fail "gave-up"
      "sender abandoned a TPDU (no generated schedule black-holes a path)";
  if (not o.gave_up) && not o.finished then
    fail "unfinished" "sender neither completed nor gave up";
  (* Delivery: the delivered buffer must equal the model's expectation
     byte for byte — placement by label, across any amount of
     refragmentation and disorder, reconstructs the stream exactly. *)
  if not o.gave_up then begin
    if not o.complete then
      fail "incomplete" "placement holds %d of %d elements" o.delivered_elems
        m.Model.elems;
    if o.delivered_elems <> m.Model.elems then
      fail "element-count" "delivered %d elements, model expects %d"
        o.delivered_elems m.Model.elems;
    if
      Bytes.length o.delivered = Bytes.length m.Model.expected
      && not (Bytes.equal o.delivered m.Model.expected)
    then
      fail "data-mismatch" "delivered buffer differs at byte %d"
        (first_diff o.delivered m.Model.expected)
    else if Bytes.length o.delivered <> Bytes.length m.Model.expected then
      fail "data-mismatch" "delivered %d bytes, model expects %d"
        (Bytes.length o.delivered)
        (Bytes.length m.Model.expected)
  end;
  if o.delivered_elems > m.Model.elems then
    fail "conservation" "placed %d elements, only %d exist" o.delivered_elems
      m.Model.elems;
  (* Quiet wire: with no fault enabled the protocol must be silent —
     no retransmission (the RTO is an overestimate by construction), no
     gap report, no duplicate, no verifier failure. *)
  if Schedule.faultless s then begin
    if o.retransmissions > 0 then
      fail "quiet-retrans" "%d RTO retransmissions on a faultless run"
        o.retransmissions;
    if o.sack_retransmissions > 0 then
      fail "quiet-sack" "%d selective retransmissions on a faultless run"
        o.sack_retransmissions;
    if o.nacks_sent > 0 then
      fail "quiet-nack" "%d NACKs on a faultless run" o.nacks_sent;
    if o.verifier.Edc.Verifier.duplicates > 0 then
      fail "quiet-dup" "%d duplicate chunks seen on a faultless run"
        o.verifier.Edc.Verifier.duplicates
  end;
  (* Without corruption, nothing may ever look damaged: loss,
     duplication, disorder and congestion drops are all absorbed by
     labels + retransmission without a single verifier failure. *)
  if s.Schedule.corrupt = 0.0 then begin
    if o.verifier.Edc.Verifier.tpdus_failed > 0 then
      fail "clean-fail" "%d TPDUs failed verification with corruption off"
        o.verifier.Edc.Verifier.tpdus_failed;
    if o.gateways_malformed > 0 then
      fail "clean-malformed" "%d packets unparseable at gateways with corruption off"
        o.gateways_malformed
  end;
  (* TPDU accounting: a fixed-size framer cuts a known number of TPDUs,
     and each is verified exactly once. *)
  if not o.gave_up then begin
    if (not s.Schedule.adaptive)
       && o.verifier.Edc.Verifier.tpdus_passed <> m.Model.n_tpdus
    then
      fail "tpdu-count" "%d TPDUs passed, model expects exactly %d"
        o.verifier.Edc.Verifier.tpdus_passed m.Model.n_tpdus;
    if s.Schedule.adaptive
       && o.verifier.Edc.Verifier.tpdus_passed < m.Model.n_tpdus
    then
      fail "tpdu-count" "%d TPDUs passed, adaptive floor is %d"
        o.verifier.Edc.Verifier.tpdus_passed m.Model.n_tpdus
  end;
  (* Leaks: after a completed transfer the verifier and the placement
     stash must be empty — unless corruption invented TPDU IDs that can
     never complete, and then the residue is bounded by how many packets
     were actually corrupted. *)
  if not o.gave_up then begin
    if s.Schedule.corrupt = 0.0 then begin
      if o.verifier_in_flight > 0 then
        fail "leak-verifier" "%d TPDUs still in flight with corruption off"
          o.verifier_in_flight;
      if o.stashed_tpdus > 0 then
        fail "leak-stash" "%d TPDU stashes retained with corruption off"
          o.stashed_tpdus
    end
    else begin
      let bound = 64 * (o.forward.Netsim.Link.corrupted + 1) in
      if o.verifier_in_flight > bound then
        fail "leak-verifier" "%d TPDUs in flight exceeds corruption bound %d"
          o.verifier_in_flight bound;
      if o.stashed_tpdus > bound then
        fail "leak-stash" "%d stashes exceeds corruption bound %d"
          o.stashed_tpdus bound
    end
  end;
  (* SACK plumbing only runs when asked for. *)
  if not s.Schedule.sack then begin
    if o.nacks_sent > 0 then
      fail "sack-off" "%d NACKs sent with SACK disabled" o.nacks_sent;
    if o.sack_retransmissions > 0 then
      fail "sack-off" "%d selective retransmissions with SACK disabled"
        o.sack_retransmissions
  end;
  List.rev !vs
