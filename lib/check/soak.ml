type finding = {
  schedule : Schedule.t;
  violations : Oracle.violation list;
  shrunk : Shrink.result;
}

type report = {
  profile : Schedule.profile;
  mutation : Driver.mutation;
  schedules_run : int;
  findings : finding list;
  detect_trials : int;
  detect_undetected : int;
  ov_injected : int;
  ov_conflicts_seen : int;
  ov_conflicts_rejected : int;
  sheds_signalled : int;
  sheds_honoured : int;
  shed_elems : int;
  fp_runs : int;
  fp_hits : int;
  fp_misses : int;
  fp_invalidations : int;
  bz_injected : int;
  bz_flaps : int;
  bz_anomalies : int;
  bz_quarantines : int;
  bz_quarantine_drops : int;
  bz_honest_quarantined : int;
  wall_seconds : float;
}

let clean r = r.findings = [] && r.detect_undetected = 0

(* Only the first few findings are worth the shrinking budget; a broken
   stack fails every schedule and we just need a counterexample. *)
let max_shrunk = 5

let run_profile ?(mutation = Driver.No_mutation) ?(schedules = 1000) ?seconds
    ?(detect_every = 97) ?progress ~seed profile =
  let t0 = Unix.gettimeofday () in
  let out_of_time () =
    match seconds with
    | None -> false
    | Some budget -> Unix.gettimeofday () -. t0 >= budget
  in
  let rng = Netsim.Rng.create ~seed in
  let findings = ref [] in
  let n_findings = ref 0 in
  let detect_trials = ref 0 in
  let detect_undetected = ref 0 in
  let ov_injected = ref 0 in
  let ov_seen = ref 0 in
  let ov_rejected = ref 0 in
  let sheds_signalled = ref 0 in
  let sheds_honoured = ref 0 in
  let shed_elems = ref 0 in
  let fp_runs = ref 0 in
  let fp = ref Transport.Flowcache.zero_stats in
  let bz_injected = ref 0 in
  let bz_flaps = ref 0 in
  let bz_anomalies = ref 0 in
  let bz_quarantines = ref 0 in
  let bz_quarantine_drops = ref 0 in
  let bz_honest_quarantined = ref 0 in
  let i = ref 0 in
  while !i < schedules && not (out_of_time ()) do
    let sched_seed = Netsim.Rng.next rng in
    let schedule = Schedule.generate ~profile ~seed:sched_seed in
    let model = Model.of_schedule schedule in
    let observation = Driver.run ~mutation schedule in
    ov_injected := !ov_injected + observation.Driver.overlap_injected;
    ov_seen := !ov_seen + observation.Driver.overlap_conflicts_seen;
    ov_rejected := !ov_rejected + observation.Driver.overlap_conflicts_rejected;
    sheds_signalled := !sheds_signalled + observation.Driver.sheds_sent;
    sheds_honoured := !sheds_honoured + observation.Driver.sheds_received;
    shed_elems := !shed_elems + observation.Driver.shed_elems;
    if schedule.Schedule.fastpath then incr fp_runs;
    fp := Transport.Flowcache.add_stats !fp observation.Driver.fastpath_stats;
    bz_anomalies := !bz_anomalies + observation.Driver.anomalies;
    bz_quarantines := !bz_quarantines + observation.Driver.quarantines;
    bz_quarantine_drops :=
      !bz_quarantine_drops + observation.Driver.quarantine_drops;
    (match observation.Driver.byz with
    | None -> ()
    | Some b ->
        bz_injected := !bz_injected + b.Driver.bo_stats.Netsim.Byzantine.injected;
        bz_flaps := !bz_flaps + b.Driver.bo_stats.Netsim.Byzantine.flaps;
        bz_honest_quarantined :=
          !bz_honest_quarantined + b.Driver.bo_honest_quarantined);
    (match Oracle.check ~schedule ~model ~observation with
    | [] -> ()
    | violations ->
        incr n_findings;
        let shrunk =
          if !n_findings <= max_shrunk then
            Shrink.shrink ~mutation schedule violations
          else { Shrink.schedule; violations; runs = 0 }
        in
        findings := { schedule; violations; shrunk } :: !findings);
    (* Sample the Table 1 fault-injection harness alongside: every
       corrupted field must be detected (or be semantically harmless) —
       [Undetected] means wrong data got through. *)
    if !i mod detect_every = 0 then
      List.iter
        (fun field ->
          incr detect_trials;
          let trial =
            Edc.Detect.run_trial ~seed:(Netsim.Rng.next rng) field
          in
          if trial.Edc.Detect.detection = Edc.Detect.Undetected then
            incr detect_undetected)
        Edc.Detect.all_fields;
    incr i;
    match progress with Some f -> f !i | None -> ()
  done;
  {
    profile;
    mutation;
    schedules_run = !i;
    findings = List.rev !findings;
    detect_trials = !detect_trials;
    detect_undetected = !detect_undetected;
    ov_injected = !ov_injected;
    ov_conflicts_seen = !ov_seen;
    ov_conflicts_rejected = !ov_rejected;
    sheds_signalled = !sheds_signalled;
    sheds_honoured = !sheds_honoured;
    shed_elems = !shed_elems;
    fp_runs = !fp_runs;
    fp_hits = !fp.Transport.Flowcache.s_hits;
    fp_misses = !fp.Transport.Flowcache.s_misses;
    fp_invalidations = !fp.Transport.Flowcache.s_invalidations;
    bz_injected = !bz_injected;
    bz_flaps = !bz_flaps;
    bz_anomalies = !bz_anomalies;
    bz_quarantines = !bz_quarantines;
    bz_quarantine_drops = !bz_quarantine_drops;
    bz_honest_quarantined = !bz_honest_quarantined;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

(* {2 JSON rendering} — hand-rolled; the report shape is small and the
   container has no JSON library to lean on. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_of_violations vs =
  Printf.sprintf "[%s]"
    (String.concat ","
       (List.map
          (fun (v : Oracle.violation) ->
            Printf.sprintf "{\"code\":%s,\"detail\":%s}" (json_str v.code)
              (json_str v.detail))
          vs))

let json_of_finding f =
  Printf.sprintf
    "{\"schedule\":%s,\"violations\":%s,\"shrunk_schedule\":%s,\"shrunk_violations\":%s,\"shrink_runs\":%d}"
    (json_str (Schedule.to_string f.schedule))
    (json_of_violations f.violations)
    (json_str (Schedule.to_string f.shrunk.Shrink.schedule))
    (json_of_violations f.shrunk.Shrink.violations)
    f.shrunk.Shrink.runs

let json_of_report r =
  Printf.sprintf
    "{\"profile\":%s,\"mutation\":%s,\"schedules_run\":%d,\"findings\":[%s],\"detect_trials\":%d,\"detect_undetected\":%d,\"overlap_injected\":%d,\"overlap_conflicts_seen\":%d,\"overlap_conflicts_rejected\":%d,\"sheds_signalled\":%d,\"sheds_honoured\":%d,\"shed_elems\":%d,\"fastpath_runs\":%d,\"fastpath_hits\":%d,\"fastpath_misses\":%d,\"fastpath_invalidations\":%d,\"byz_injected\":%d,\"byz_flaps\":%d,\"byz_anomalies\":%d,\"byz_quarantines\":%d,\"byz_quarantine_drops\":%d,\"byz_honest_quarantined\":%d,\"wall_seconds\":%.3f}"
    (json_str (Schedule.profile_name r.profile))
    (json_str (Driver.mutation_to_string r.mutation))
    r.schedules_run
    (String.concat "," (List.map json_of_finding r.findings))
    r.detect_trials r.detect_undetected r.ov_injected r.ov_conflicts_seen
    r.ov_conflicts_rejected r.sheds_signalled r.sheds_honoured r.shed_elems
    r.fp_runs r.fp_hits r.fp_misses r.fp_invalidations r.bz_injected
    r.bz_flaps r.bz_anomalies r.bz_quarantines r.bz_quarantine_drops
    r.bz_honest_quarantined r.wall_seconds

let json_of_reports reports =
  Printf.sprintf "{\"reports\":[%s]}"
    (String.concat "," (List.map json_of_report reports))
