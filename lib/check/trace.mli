(** A bounded, allocation-cheap event recorder for driver runs.

    Runs are already replayable from (seed, schedule), so the trace's
    job is not capture-everything fidelity but a human-readable tail of
    what the network did, for inspecting a shrunk counterexample.  A
    ring buffer keeps the last [capacity] events; earlier ones are
    counted, not stored. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 2048 events. *)

val add : t -> time:float -> string -> unit

val recorded : t -> int
(** Total events ever recorded (including since-dropped ones). *)

val dropped : t -> int

val events : t -> (float * string) list
(** The retained tail, oldest first. *)

val pp : Format.formatter -> t -> unit
