(** The differential oracle: diffs a {!Driver.observation} against the
    pure {!Model} and the schedule's fault profile, and reports every
    disagreement.

    Each check pins down one claim the paper makes about the chunk
    architecture:

    - [lockup]/[gave-up]/[unfinished] — liveness: labels plus bounded
      timers always terminate, whatever the disorder;
    - [incomplete]/[element-count]/[data-mismatch]/[conservation] —
      §2–3: placement by connection SN reconstructs the stream exactly,
      through arbitrary refragmentation, reordering and duplication;
    - [quiet-*] — the RTO/NACK machinery is excited only by faults;
    - [clean-fail]/[clean-malformed] — §3.3: retransmissions reuse
      identical labels, so loss, duplication and congestion drops are
      absorbed without ever looking like damage;
    - [tpdu-count] — the framer's TPDU cut is deterministic and each
      TPDU verifies exactly once;
    - [leak-*] — state hygiene: completed transfers leave no verifier
      or stash residue (corruption may invent bounded residue);
    - [sack-off] — feature isolation;
    - [shed-safety] — partial reliability never sheds mandatory data:
      every honoured shed span must be declared sheddable by the
      schedule's shed contract, sheds without a contract are data loss,
      and outside the honoured spans delivery stays byte-exact (the
      delivery checks mask exactly the observed shed spans and the
      element/TPDU accounts shrink by exactly the shed amounts);
      shed-liveness needs no code of its own — a shed schedule is never
      starvable, so [gave-up]/[incomplete] already demand completion;
    - [metrics-verify-count]/[metrics-occupancy] — cross-checks against
      the observability layer's own accounting (see DESIGN.md §6): the
      per-run delta of [edc_tpdus_passed_total] must equal that of
      [transport_acks_total] (one fresh ACK per passed TPDU), and the
      [governor_occupancy_bytes] gauge's high-water mark must stay
      within the schedule's state budget.  Both degrade to trivially
      true when [Obs.enabled = false]. *)

type violation = { code : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val check :
  schedule:Schedule.t ->
  model:Model.t ->
  observation:Driver.observation ->
  violation list
(** Empty list = the run is indistinguishable from the reference model's
    prediction. *)
