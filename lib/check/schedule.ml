open Labelling

type profile =
  | Clean
  | Lossy
  | Hostile
  | Hostile_flood
  | Outage_recover
  | Crash_restart
  | Crash_flood
  | Overlap_hostile
  | Degrade_hostile
  | Fastpath_hostile
  | Byzantine_hostile

let profile_name = function
  | Clean -> "clean"
  | Lossy -> "lossy"
  | Hostile -> "hostile"
  | Hostile_flood -> "hostile-flood"
  | Outage_recover -> "outage-recover"
  | Crash_restart -> "crash-restart"
  | Crash_flood -> "crash-flood"
  | Overlap_hostile -> "overlap-hostile"
  | Degrade_hostile -> "degrade-hostile"
  | Fastpath_hostile -> "fastpath-hostile"
  | Byzantine_hostile -> "byzantine-hostile"

let profile_of_name = function
  | "clean" -> Some Clean
  | "lossy" -> Some Lossy
  | "hostile" -> Some Hostile
  | "hostile-flood" -> Some Hostile_flood
  | "outage-recover" -> Some Outage_recover
  | "crash-restart" -> Some Crash_restart
  | "crash-flood" -> Some Crash_flood
  | "overlap-hostile" -> Some Overlap_hostile
  | "degrade-hostile" -> Some Degrade_hostile
  | "fastpath-hostile" -> Some Fastpath_hostile
  | "byzantine-hostile" -> Some Byzantine_hostile
  | _ -> None

let all_profiles =
  [
    Clean;
    Lossy;
    Hostile;
    Hostile_flood;
    Outage_recover;
    Crash_restart;
    Crash_flood;
    Overlap_hostile;
    Degrade_hostile;
    Fastpath_hostile;
    Byzantine_hostile;
  ]

type spread = Round_robin | Random_path | Route_change of float

type gateway = {
  gw_policy : Repack.policy;
  gw_mtu : int;
  gw_batch : int;
}

type dropper = { drop_mode : Netsim.Dropper.mode; drop_loss : float }

type outage = {
  out_hold : bool;  (** pause-and-replay instead of discard *)
  out_start : float;
  out_duration : float;
}

type flood = {
  flood_rate : float;  (** forged packets per simulated second *)
  flood_stop : float;  (** injection ends here *)
  flood_conns : int;  (** distinct bogus connection ids in play *)
}

type crash = {
  cr_time : float;  (** the receiver endpoint dies here *)
  cr_restart : float;  (** downtime before restart from the persisted image *)
}

type shed = {
  sh_every : int;
      (** every [sh_every]-th TPDU is declared sheddable (the last TPDU
          never is — it carries the C.ST stream-end marker) *)
  sh_txs : int;  (** sender sheds a sheddable TPDU after this many txs *)
}

type overlap = {
  ov_rate : float;  (** injections per simulated second *)
  ov_stop : float;  (** injection ends here *)
  ov_dup : bool;  (** divergent duplicates of observed chunks *)
  ov_forge : bool;  (** forged corroborated TPDUs over observed ranges *)
  ov_resplit : bool;  (** overlapping gateway-style re-split chains *)
}

type byz = {
  bz_rate : float;  (** hostile actions per simulated second *)
  bz_stop : float;  (** the byzantine peer goes quiet here *)
  bz_conns : int;  (** distinct byzantine connection ids in play *)
  bz_acks : bool;
      (** ACKs for never-sent TPDUs and contradictory ACK/NACK pairs on
          the reverse path *)
  bz_sheds : bool;  (** forged [Shed_tpdu] naming honest Critical TPDUs *)
  bz_replay : bool;  (** verbatim replays of signals from archived epochs *)
  bz_garbage : bool;
      (** extra label-plausible garbage TPDUs sealed with self-consistent
          WSC-2 parities (they verify; the labels are the only lie) *)
}

type t = {
  seed : int;
  profile : profile;
  (* transfer *)
  data_len : int;
  elem_size : int;
  tpdu_elems : int;
  frame_bytes : int;
  mtu : int;
  window : int;
  rto : float;
  sack : bool;
  adaptive : bool;
  nack_delay : float;
  (* control plane *)
  rto_adaptive : bool;
  give_up_txs : int;
  state_budget : int;
  state_ttl : float;
  connections : int;
  reopen : bool;
  (* topology *)
  paths : int;
  skew : float;
  jitter : float;
  spread : spread;
  rate_bps : float;
  delay : float;
  gateways : gateway list;
  (* faults *)
  loss : float;
  corrupt : float;
  duplicate : float;
  dropper : dropper option;
  ack_blackhole : (float * float) option;
  outage : outage option;
  flood : flood option;
  overlap : overlap option;
  shed : shed option;
  crashes : crash list;
  snap_period : float;  (** full-snapshot interval; 0 = ACK-journal only *)
  fastpath : bool;
      (** deliver through the flow-cache fast path ([Multi.ingest] /
          [Receiver.ingest]) instead of [on_packet]; the
          [fastpath-coherence] oracle row re-runs the schedule with the
          cache off and demands identical outcomes *)
  byz : byz option;
      (** a wire-conformant but protocol-violating peer; the
          [blast-radius] oracle row re-runs the schedule with this peer
          removed and demands identical honest outcomes *)
}

let faultless s =
  s.loss = 0.0 && s.corrupt = 0.0 && s.duplicate = 0.0 && s.jitter = 0.0
  && s.dropper = None && s.ack_blackhole = None && s.outage = None
  && s.flood = None && s.overlap = None && s.shed = None && s.crashes = []
  && s.byz = None

(* Schedules that exercise the demultiplexing receiver (several
   connections, connection reuse, or adversarial connection traffic) run
   through the driver's multi-connection path. *)
let multi_mode s =
  s.connections > 1 || s.reopen || s.flood <> None || s.byz <> None

(* The TPDU partition of one stream, mirroring [Framer]'s cutting rules
   (and [Model.of_schedule]): frames pad to whole elements, a TPDU
   boundary falls every [tpdu_elems] elements plus once at the stream
   end.  Only a fixed (non-adaptive) partition is deterministic, which
   is why a shed schedule forbids [adaptive]. *)
let n_elems s =
  let full = s.data_len / s.frame_bytes in
  let rem = s.data_len mod s.frame_bytes in
  (full * (s.frame_bytes / s.elem_size))
  + ((rem + s.elem_size - 1) / s.elem_size)

let n_tpdus s = (n_elems s + s.tpdu_elems - 1) / s.tpdu_elems

(* The shed contract both endpoints (and the oracle) derive from the
   schedule alone: every [sh_every]-th TPDU is sheddable, except the
   last — it carries the C.ST stream-end marker, without which a
   [`Quota] receiver can never learn the stream ended. *)
let sheddable_tid s ~t_id =
  match s.shed with
  | None -> false
  | Some sh ->
      let n = n_tpdus s in
      t_id >= 0 && t_id < n - 1 && t_id mod sh.sh_every = sh.sh_every - 1

let classify_of s t_id =
  if sheddable_tid s ~t_id then Significance.Sheddable 1
  else Significance.Normal

let config_of s =
  {
    Transport.Chunk_transport.conn_id = 1;
    elem_size = s.elem_size;
    tpdu_elems = s.tpdu_elems;
    frame_bytes = s.frame_bytes;
    mtu = s.mtu;
    window = s.window;
    rto = s.rto;
    rto_adaptive = s.rto_adaptive;
    adaptive = s.adaptive;
    sack = s.sack;
    nack_delay = s.nack_delay;
    give_up_txs = s.give_up_txs;
    state_budget = s.state_budget;
    state_ttl = s.state_ttl;
    classify = classify_of s;
    shed_txs = (match s.shed with None -> 0 | Some sh -> sh.sh_txs);
  }

(* The payload both the driver (what gets sent) and the model (what must
   come out) derive from the schedule alone.  Every (connection, epoch)
   pair gets its own stream; (1, 0) is the classic single-transfer
   payload. *)
let data_of_conn s ~conn ~epoch =
  let salt = ((conn - 1) * 0x9E3779B9) lxor (epoch * 0x517CC1B) in
  let rng = Netsim.Rng.create ~seed:(s.seed lxor 0x0DA7A5EED lxor salt) in
  Bytes.init s.data_len (fun _ -> Netsim.Rng.byte rng)

let data_of s = data_of_conn s ~conn:1 ~epoch:0

(* An RTO that a fault-free run can never beat: round trip across every
   hop, full inter-path skew, the gateways' batching delay, and the
   serialisation of a whole window (amplified for envelope-per-chunk
   repacking), with margin.  Clean-profile oracles assert {e zero}
   retransmissions, so this must be an overestimate, never a guess. *)
let estimate_rto s =
  let hops = float_of_int (List.length s.gateways + 2) in
  let tpdu_bytes = s.tpdu_elems * s.elem_size in
  let inflight = float_of_int (s.window * (tpdu_bytes + 2048)) in
  let amplification =
    if
      List.exists
        (fun g -> g.gw_policy = Repack.One_per_packet || g.gw_mtu < 512)
        s.gateways
    then 8.0
    else 2.0
  in
  let ser = inflight *. 8.0 /. s.rate_bps *. amplification in
  let t =
    0.05
    +. (2.0 *. s.delay *. hops)
    +. (float_of_int s.paths *. s.skew)
    +. (12.0 *. s.jitter)
    +. (0.02 *. hops) +. ser
  in
  Float.min 2.0 t

(* A state budget that comfortably covers the legitimate working set —
   every live connection's placement quota plus a full window of
   per-TPDU soft state each — so budget evictions hit only state nobody
   is refreshing (abandoned or forged).  Kept tight enough that a flood
   cannot park unbounded garbage below it. *)
let estimate_budget s =
  let tpdu_bytes = s.tpdu_elems * s.elem_size in
  let per_tpdu = (2 * tpdu_bytes) + (32 * s.tpdu_elems) + 1024 in
  let full = s.data_len / s.frame_bytes in
  let rem = s.data_len mod s.frame_bytes in
  let elems =
    (full * (s.frame_bytes / s.elem_size))
    + ((rem + s.elem_size - 1) / s.elem_size)
  in
  let conn_quota = (elems * s.elem_size) + 256 in
  (2 * s.connections * ((s.window * per_tpdu) + conn_quota)) + 65536

let float_in rng lo hi = lo +. Netsim.Rng.float rng (hi -. lo)
let int_in rng lo hi = lo + Netsim.Rng.int rng (hi - lo + 1)

let gen_gateway rng =
  let gw_policy =
    match Netsim.Rng.int rng 3 with
    | 0 -> Repack.One_per_packet
    | 1 -> Repack.Combine
    | _ -> Repack.Reassemble
  in
  {
    gw_policy;
    gw_mtu = int_in rng 160 2048;
    gw_batch = 1 + Netsim.Rng.int rng 4;
  }

let generate ~profile ~seed =
  let rng = Netsim.Rng.create ~seed:(seed lxor 0x5C4ED) in
  let elem_size = if Netsim.Rng.bool rng 0.5 then 4 else 8 in
  let tpdu_elems =
    int_in rng 16 (min 512 (Edc.Invariant.max_tpdu_elems ~size:elem_size))
  in
  let frame_bytes = elem_size * int_in rng 8 256 in
  let data_len =
    match profile with
    | Clean -> int_in rng 1 32768
    | Lossy | Hostile | Outage_recover | Crash_restart | Overlap_hostile
    | Fastpath_hostile ->
        int_in rng 1 16384
    | Hostile_flood | Crash_flood | Byzantine_hostile -> int_in rng 1 8192
    | Degrade_hostile ->
        (* enough data for several TPDUs, so the shed pattern has
           something to bite on *)
        int_in rng 2048 16384
  in
  let gateways = List.init (Netsim.Rng.int rng 4) (fun _ -> gen_gateway rng) in
  let jitter =
    match profile with
    | Clean -> 0.0
    | Lossy | Hostile | Hostile_flood | Outage_recover | Crash_restart
    | Crash_flood | Overlap_hostile | Degrade_hostile | Fastpath_hostile
    | Byzantine_hostile ->
        if Netsim.Rng.bool rng 0.5 then float_in rng 0.0 3e-4 else 0.0
  in
  let dropper =
    match profile with
    | Clean | Outage_recover | Crash_restart | Crash_flood | Overlap_hostile
    | Byzantine_hostile ->
        None
    | Lossy | Hostile | Hostile_flood | Fastpath_hostile ->
        if Netsim.Rng.bool rng 0.3 then
          Some
            {
              drop_mode =
                (if Netsim.Rng.bool rng 0.5 then Netsim.Dropper.Whole_tpdu
                 else Netsim.Dropper.Random);
              drop_loss = float_in rng 0.005 0.05;
            }
        else None
    | Degrade_hostile ->
        (* sustained congestion aimed at sheddable traffic only: heavy
           enough (10-30%) that sheddable TPDUs hit the shed policy's
           transmission bound while Critical traffic rides through *)
        Some
          {
            drop_mode = Netsim.Dropper.By_class;
            drop_loss = float_in rng 0.1 0.3;
          }
  in
  let shed =
    match profile with
    | Degrade_hostile ->
        Some { sh_every = int_in rng 2 4; sh_txs = int_in rng 2 4 }
    | _ -> None
  in
  let connections =
    match profile with
    | Hostile_flood | Crash_flood -> int_in rng 2 4
    | Fastpath_hostile ->
        (* a mix: exercise both the single-receiver and the
           demultiplexing fast path *)
        int_in rng 1 3
    | Byzantine_hostile ->
        (* the honest population the blast-radius oracle watches *)
        int_in rng 1 3
    | _ -> 1
  in
  let reopen =
    ((profile = Hostile_flood || profile = Crash_flood)
    && Netsim.Rng.bool rng 0.6)
    || (profile = Fastpath_hostile && Netsim.Rng.bool rng 0.3)
  in
  let ack_blackhole =
    (* a permanently dead reverse path: the sender must give up cleanly
       and the receiver must evict, never leak *)
    if profile = Hostile_flood && Netsim.Rng.bool rng 0.25 then
      Some (float_in rng 0.0 0.1, infinity)
    else None
  in
  let flood =
    match profile with
    | Hostile_flood ->
        Some
          {
            flood_rate = float_in rng 200.0 2000.0;
            flood_stop = float_in rng 0.2 1.0;
            flood_conns = int_in rng 4 32;
          }
    | Crash_flood ->
        (* lighter than Hostile_flood: the crash-restart machinery is the
           subject under test, the flood is background pressure *)
        Some
          {
            flood_rate = float_in rng 100.0 1000.0;
            flood_stop = float_in rng 0.2 0.6;
            flood_conns = int_in rng 4 16;
          }
    | _ -> None
  in
  let overlap =
    match profile with
    | Overlap_hostile ->
        let ov_dup = Netsim.Rng.bool rng 0.6 in
        let ov_resplit = Netsim.Rng.bool rng 0.6 in
        (* the forged-TPDU mode is the one that reliably provokes
           placement conflicts; keep at least one mode armed *)
        let ov_forge =
          Netsim.Rng.bool rng 0.8 || not (ov_dup || ov_resplit)
        in
        Some
          {
            ov_rate = float_in rng 20.0 200.0;
            ov_stop = float_in rng 0.2 1.0;
            ov_dup;
            ov_forge;
            ov_resplit;
          }
    | _ -> None
  in
  let base =
    {
      seed;
      profile;
      data_len;
      elem_size;
      tpdu_elems;
      frame_bytes;
      mtu = int_in rng 256 2048;
      window = int_in rng 1 8;
      rto = 0.0 (* filled below *);
      sack = Netsim.Rng.bool rng 0.5;
      adaptive =
        (* a shed span is derived from the schedule's fixed TPDU
           partition, so the partition must not move mid-flight *)
        Netsim.Rng.bool rng 0.3 && shed = None;
      nack_delay = 0.0 (* filled below *);
      rto_adaptive = false (* filled below *);
      give_up_txs = 40;
      state_budget = 0 (* filled below *);
      state_ttl = 0.0 (* filled below *);
      connections;
      reopen;
      paths = int_in rng 1 8;
      skew = float_in rng 0.0 5e-4;
      jitter;
      spread =
        (match Netsim.Rng.int rng 3 with
        | 0 -> Round_robin
        | 1 -> Random_path
        | _ -> Route_change (float_in rng 0.005 0.1));
      rate_bps = float_in rng 5e7 6e8;
      delay = float_in rng 1e-4 2e-3;
      gateways;
      loss =
        (match profile with
        | Clean -> 0.0
        | Crash_restart | Crash_flood | Overlap_hostile | Degrade_hostile
        | Byzantine_hostile ->
            (* light loss: enough to keep TPDUs in flight across crash
               points (or exercise Critical retransmission under
               degradation), not enough to drown the recovery signal *)
            if Netsim.Rng.bool rng 0.5 then float_in rng 0.0 0.03 else 0.0
        | Lossy | Hostile | Hostile_flood | Outage_recover
        | Fastpath_hostile ->
            if Netsim.Rng.bool rng 0.7 then float_in rng 0.0 0.08 else 0.0);
      corrupt =
        (match profile with
        | Clean | Lossy | Outage_recover | Crash_restart | Degrade_hostile
        | Byzantine_hostile ->
            (* no corruption: keeps anomaly attribution unambiguous, so
               the blast-radius comparison isolates byzantine effects *)
            0.0
        | Crash_flood -> float_in rng 0.002 0.02
        | Hostile | Hostile_flood | Overlap_hostile | Fastpath_hostile ->
            float_in rng 0.002 0.04);
      duplicate =
        (match profile with
        | Clean -> 0.0
        | Lossy | Hostile | Hostile_flood | Outage_recover | Crash_restart
        | Crash_flood | Overlap_hostile | Degrade_hostile
        | Fastpath_hostile | Byzantine_hostile ->
            if Netsim.Rng.bool rng 0.5 then float_in rng 0.0 0.05 else 0.0);
      dropper;
      ack_blackhole;
      outage = None (* filled below *);
      flood;
      overlap;
      shed;
      crashes = [] (* filled below *);
      snap_period = 0.0 (* filled below *);
      fastpath = profile = Fastpath_hostile (* re-drawn below *);
      byz = None (* drawn last, below *);
    }
  in
  let rto = estimate_rto base in
  (* A clean run must never see a gap last long enough to NACK; a faulty
     run recovers faster by NACKing early. *)
  let nack_delay = if faultless base then rto else Float.max 0.01 (rto /. 4.0) in
  let outage =
    match profile with
    | Outage_recover ->
        (* long enough to hurt (many RTOs) but far short of the give-up
           horizon: capped backoff spends ~300 RTOs before abandoning *)
        Some
          {
            out_hold = Netsim.Rng.bool rng 0.5;
            out_start = float_in rng 0.01 0.2;
            out_duration = float_in rng (10.0 *. rto) (50.0 *. rto);
          }
    | _ -> None
  in
  (* Crash points land where TPDUs are provably mid-flight: the first a
     couple of RTOs in, each next one a couple of RTOs after the previous
     restart, so every crash interrupts live transfer state.  Downtime is
     a few RTOs — the sender's capped backoff rides it out without
     approaching the give-up horizon. *)
  let crashes =
    match profile with
    | Crash_restart | Crash_flood ->
        let n =
          match profile with Crash_restart -> int_in rng 1 3 | _ -> int_in rng 1 2
        in
        let rec gen i t0 acc =
          if i = 0 then List.rev acc
          else begin
            let cr_time = t0 +. float_in rng (2.0 *. rto) (8.0 *. rto) in
            let cr_restart = float_in rng (2.0 *. rto) (6.0 *. rto) in
            gen (i - 1) (cr_time +. cr_restart) ({ cr_time; cr_restart } :: acc)
          end
        in
        gen n (float_in rng 0.005 0.05) []
    | Byzantine_hostile ->
        (* occasionally crash mid-attack: quarantine state must survive
           the restore (persisted in the connection images) *)
        if Netsim.Rng.bool rng 0.3 then begin
          let cr_time = float_in rng (2.0 *. rto) (8.0 *. rto) in
          let cr_restart = float_in rng (2.0 *. rto) (6.0 *. rto) in
          [ { cr_time; cr_restart } ]
        end
        else []
    | _ -> []
  in
  let snap_period =
    match profile with
    | Crash_restart | Crash_flood -> float_in rng (5.0 *. rto) (20.0 *. rto)
    | Byzantine_hostile when crashes <> [] ->
        float_in rng (5.0 *. rto) (20.0 *. rto)
    | _ -> 0.0
  in
  (* The RTO estimator only makes sense against real adversity, and a
     faultless run's quiet-wire oracle must never be exposed to an
     estimator's early samples. *)
  let rto_adaptive =
    profile <> Clean
    && (not (faultless { base with outage; crashes }))
    && Netsim.Rng.bool rng 0.5
  in
  let give_up_txs =
    if base.ack_blackhole <> None then int_in rng 6 10 else 40
  in
  (* The TTL must exceed every legitimate quiet period: the longest gap
     between retransmissions of one TPDU is 8 RTOs (capped backoff), an
     outage adds its whole duration, and a crash adds its downtime. *)
  let state_ttl =
    let floor_ttl = Float.max (30.0 *. rto) 5.0 in
    let floor_ttl =
      match outage with
      | Some o -> Float.max floor_ttl (2.0 *. o.out_duration)
      | None -> floor_ttl
    in
    List.fold_left
      (fun acc c -> Float.max acc (4.0 *. c.cr_restart))
      floor_ttl crashes
  in
  let state_budget =
    match profile with
    | Hostile_flood | Crash_flood -> estimate_budget base
    | _ -> 0
  in
  (* Drawn last so the field's introduction leaves every earlier draw
     of existing profiles' schedules unchanged.  Every profile runs with
     the cache on a third of the time — the coherence oracle then
     exercises cache-on-vs-off across the whole fault space, crash
     restarts included. *)
  let fastpath =
    profile = Fastpath_hostile || Netsim.Rng.bool rng (1.0 /. 3.0)
  in
  (* Drawn after [fastpath] under the same drawn-last rule.  The flap
     rate is kept high enough that an unquarantined peer demonstrably
     exceeds the isolation budget, which is what lets the byz-clobber
     mutation be caught. *)
  let byz =
    match profile with
    | Byzantine_hostile ->
        Some
          {
            bz_rate = float_in rng 150.0 400.0;
            bz_stop = float_in rng 0.5 1.0;
            bz_conns = int_in rng 1 2;
            bz_acks = Netsim.Rng.bool rng 0.6;
            bz_sheds = Netsim.Rng.bool rng 0.6;
            bz_replay = Netsim.Rng.bool rng 0.6;
            bz_garbage = Netsim.Rng.bool rng 0.6;
          }
    | _ -> None
  in
  {
    base with
    rto;
    nack_delay;
    rto_adaptive;
    give_up_txs;
    state_ttl;
    state_budget;
    outage;
    crashes;
    snap_period;
    fastpath;
    byz;
  }

(* {2 Flat text round-trip}

   One [key=value] token per field, space-separated, order fixed.
   Floats print as %.17g so parsing reproduces them bit-exactly — a
   shrunk counterexample must replay the violation byte for byte. *)

let policy_name = function
  | Repack.One_per_packet -> "one"
  | Repack.Combine -> "combine"
  | Repack.Reassemble -> "reassemble"

let policy_of_name = function
  | "one" -> Some Repack.One_per_packet
  | "combine" -> Some Repack.Combine
  | "reassemble" -> Some Repack.Reassemble
  | _ -> None

let spread_to_string = function
  | Round_robin -> "rr"
  | Random_path -> "random"
  | Route_change t -> Printf.sprintf "change:%.17g" t

let spread_of_string str =
  match str with
  | "rr" -> Some Round_robin
  | "random" -> Some Random_path
  | _ -> (
      match String.index_opt str ':' with
      | Some i when String.sub str 0 i = "change" -> (
          match
            float_of_string_opt
              (String.sub str (i + 1) (String.length str - i - 1))
          with
          | Some t -> Some (Route_change t)
          | None -> None)
      | _ -> None)

let gateways_to_string gws =
  if gws = [] then "-"
  else
    String.concat ","
      (List.map
         (fun g ->
           Printf.sprintf "%s:%d:%d" (policy_name g.gw_policy) g.gw_mtu
             g.gw_batch)
         gws)

let gateways_of_string str =
  if str = "-" then Some []
  else
    let parse_one tok =
      match String.split_on_char ':' tok with
      | [ p; mtu; batch ] -> (
          match (policy_of_name p, int_of_string_opt mtu, int_of_string_opt batch)
          with
          | Some gw_policy, Some gw_mtu, Some gw_batch ->
              Some { gw_policy; gw_mtu; gw_batch }
          | _ -> None)
      | _ -> None
    in
    let toks = String.split_on_char ',' str in
    let parsed = List.filter_map parse_one toks in
    if List.length parsed = List.length toks then Some parsed else None

let dropper_to_string = function
  | None -> "-"
  | Some { drop_mode = Netsim.Dropper.Random; drop_loss } ->
      Printf.sprintf "random:%.17g" drop_loss
  | Some { drop_mode = Netsim.Dropper.Whole_tpdu; drop_loss } ->
      Printf.sprintf "tpdu:%.17g" drop_loss
  | Some { drop_mode = Netsim.Dropper.By_class; drop_loss } ->
      Printf.sprintf "class:%.17g" drop_loss

let dropper_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ "random"; p ] ->
        Option.map
          (fun drop_loss ->
            Some { drop_mode = Netsim.Dropper.Random; drop_loss })
          (float_of_string_opt p)
    | [ "tpdu"; p ] ->
        Option.map
          (fun drop_loss ->
            Some { drop_mode = Netsim.Dropper.Whole_tpdu; drop_loss })
          (float_of_string_opt p)
    | [ "class"; p ] ->
        Option.map
          (fun drop_loss ->
            Some { drop_mode = Netsim.Dropper.By_class; drop_loss })
          (float_of_string_opt p)
    | _ -> None

let blackhole_to_string = function
  | None -> "-"
  | Some (t0, dur) -> Printf.sprintf "%.17g:%.17g" t0 dur

let blackhole_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ a; b ] -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some t0, Some dur -> Some (Some (t0, dur))
        | _ -> None)
    | _ -> None

let outage_to_string = function
  | None -> "-"
  | Some o ->
      Printf.sprintf "%s:%.17g:%.17g"
        (if o.out_hold then "hold" else "drop")
        o.out_start o.out_duration

let outage_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ m; a; b ] when m = "hold" || m = "drop" -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some out_start, Some out_duration ->
            Some (Some { out_hold = m = "hold"; out_start; out_duration })
        | _ -> None)
    | _ -> None

let flood_to_string = function
  | None -> "-"
  | Some f ->
      Printf.sprintf "%.17g:%.17g:%d" f.flood_rate f.flood_stop f.flood_conns

let flood_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ r; s; c ] -> (
        match
          (float_of_string_opt r, float_of_string_opt s, int_of_string_opt c)
        with
        | Some flood_rate, Some flood_stop, Some flood_conns ->
            Some (Some { flood_rate; flood_stop; flood_conns })
        | _ -> None)
    | _ -> None

let overlap_to_string = function
  | None -> "-"
  | Some o ->
      Printf.sprintf "%.17g:%.17g:%b:%b:%b" o.ov_rate o.ov_stop o.ov_dup
        o.ov_forge o.ov_resplit

let overlap_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ r; s; d; f; re ] -> (
        match
          ( float_of_string_opt r,
            float_of_string_opt s,
            bool_of_string_opt d,
            bool_of_string_opt f,
            bool_of_string_opt re )
        with
        | Some ov_rate, Some ov_stop, Some ov_dup, Some ov_forge, Some ov_resplit
          ->
            Some (Some { ov_rate; ov_stop; ov_dup; ov_forge; ov_resplit })
        | _ -> None)
    | _ -> None

let byz_to_string = function
  | None -> "-"
  | Some b ->
      Printf.sprintf "%.17g:%.17g:%d:%b:%b:%b:%b" b.bz_rate b.bz_stop
        b.bz_conns b.bz_acks b.bz_sheds b.bz_replay b.bz_garbage

let byz_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ r; s; c; a; sh; rp; g ] -> (
        match
          ( float_of_string_opt r,
            float_of_string_opt s,
            int_of_string_opt c,
            bool_of_string_opt a,
            bool_of_string_opt sh,
            bool_of_string_opt rp,
            bool_of_string_opt g )
        with
        | ( Some bz_rate,
            Some bz_stop,
            Some bz_conns,
            Some bz_acks,
            Some bz_sheds,
            Some bz_replay,
            Some bz_garbage ) ->
            Some
              (Some
                 {
                   bz_rate;
                   bz_stop;
                   bz_conns;
                   bz_acks;
                   bz_sheds;
                   bz_replay;
                   bz_garbage;
                 })
        | _ -> None)
    | _ -> None

let shed_to_string = function
  | None -> "-"
  | Some sh -> Printf.sprintf "%d:%d" sh.sh_every sh.sh_txs

let shed_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ e; t ] -> (
        match (int_of_string_opt e, int_of_string_opt t) with
        | Some sh_every, Some sh_txs -> Some (Some { sh_every; sh_txs })
        | _ -> None)
    | _ -> None

let crashes_to_string = function
  | [] -> "-"
  | cs ->
      String.concat ","
        (List.map
           (fun c -> Printf.sprintf "%.17g:%.17g" c.cr_time c.cr_restart)
           cs)

let crashes_of_string str =
  if str = "-" then Some []
  else
    let parse_one tok =
      match String.split_on_char ':' tok with
      | [ a; b ] -> (
          match (float_of_string_opt a, float_of_string_opt b) with
          | Some cr_time, Some cr_restart -> Some { cr_time; cr_restart }
          | _ -> None)
      | _ -> None
    in
    let toks = String.split_on_char ',' str in
    let parsed = List.filter_map parse_one toks in
    if List.length parsed = List.length toks then Some parsed else None

let to_string s =
  String.concat " "
    [
      Printf.sprintf "seed=%d" s.seed;
      Printf.sprintf "profile=%s" (profile_name s.profile);
      Printf.sprintf "data_len=%d" s.data_len;
      Printf.sprintf "elem_size=%d" s.elem_size;
      Printf.sprintf "tpdu_elems=%d" s.tpdu_elems;
      Printf.sprintf "frame_bytes=%d" s.frame_bytes;
      Printf.sprintf "mtu=%d" s.mtu;
      Printf.sprintf "window=%d" s.window;
      Printf.sprintf "rto=%.17g" s.rto;
      Printf.sprintf "sack=%b" s.sack;
      Printf.sprintf "adaptive=%b" s.adaptive;
      Printf.sprintf "nack_delay=%.17g" s.nack_delay;
      Printf.sprintf "rto_adaptive=%b" s.rto_adaptive;
      Printf.sprintf "give_up_txs=%d" s.give_up_txs;
      Printf.sprintf "state_budget=%d" s.state_budget;
      Printf.sprintf "state_ttl=%.17g" s.state_ttl;
      Printf.sprintf "connections=%d" s.connections;
      Printf.sprintf "reopen=%b" s.reopen;
      Printf.sprintf "paths=%d" s.paths;
      Printf.sprintf "skew=%.17g" s.skew;
      Printf.sprintf "jitter=%.17g" s.jitter;
      Printf.sprintf "spread=%s" (spread_to_string s.spread);
      Printf.sprintf "rate_bps=%.17g" s.rate_bps;
      Printf.sprintf "delay=%.17g" s.delay;
      Printf.sprintf "gateways=%s" (gateways_to_string s.gateways);
      Printf.sprintf "loss=%.17g" s.loss;
      Printf.sprintf "corrupt=%.17g" s.corrupt;
      Printf.sprintf "duplicate=%.17g" s.duplicate;
      Printf.sprintf "dropper=%s" (dropper_to_string s.dropper);
      Printf.sprintf "ack_blackhole=%s" (blackhole_to_string s.ack_blackhole);
      Printf.sprintf "outage=%s" (outage_to_string s.outage);
      Printf.sprintf "flood=%s" (flood_to_string s.flood);
      Printf.sprintf "overlap=%s" (overlap_to_string s.overlap);
      Printf.sprintf "shed=%s" (shed_to_string s.shed);
      Printf.sprintf "crashes=%s" (crashes_to_string s.crashes);
      Printf.sprintf "snap_period=%.17g" s.snap_period;
      Printf.sprintf "fastpath=%b" s.fastpath;
      Printf.sprintf "byz=%s" (byz_to_string s.byz);
    ]

let known_fields =
  [
    "seed"; "profile"; "data_len"; "elem_size"; "tpdu_elems"; "frame_bytes";
    "mtu"; "window"; "rto"; "sack"; "adaptive"; "nack_delay"; "rto_adaptive";
    "give_up_txs"; "state_budget"; "state_ttl"; "connections"; "reopen";
    "paths"; "skew"; "jitter"; "spread"; "rate_bps"; "delay"; "gateways";
    "loss"; "corrupt"; "duplicate"; "dropper"; "ack_blackhole"; "outage";
    "flood"; "overlap"; "shed"; "crashes"; "snap_period"; "fastpath"; "byz";
  ]

let unknown_fields str =
  List.filter_map
    (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok '=' with
        | Some i ->
            let k = String.sub tok 0 i in
            if List.mem k known_fields then None else Some k
        | None -> Some tok)
    (String.split_on_char ' ' (String.trim str))

let of_string str =
  if unknown_fields str <> [] then None
  else
  let kvs =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' (String.trim str))
  in
  let find k = List.assoc_opt k kvs in
  let ( let* ) = Option.bind in
  let int k = Option.bind (find k) int_of_string_opt in
  let flt k = Option.bind (find k) float_of_string_opt in
  let bol k = Option.bind (find k) bool_of_string_opt in
  let* seed = int "seed" in
  let* profile = Option.bind (find "profile") profile_of_name in
  let* data_len = int "data_len" in
  let* elem_size = int "elem_size" in
  let* tpdu_elems = int "tpdu_elems" in
  let* frame_bytes = int "frame_bytes" in
  let* mtu = int "mtu" in
  let* window = int "window" in
  let* rto = flt "rto" in
  let* sack = bol "sack" in
  let* adaptive = bol "adaptive" in
  let* nack_delay = flt "nack_delay" in
  let* rto_adaptive = bol "rto_adaptive" in
  let* give_up_txs = int "give_up_txs" in
  let* state_budget = int "state_budget" in
  let* state_ttl = flt "state_ttl" in
  let* connections = int "connections" in
  let* reopen = bol "reopen" in
  let* paths = int "paths" in
  let* skew = flt "skew" in
  let* jitter = flt "jitter" in
  let* spread = Option.bind (find "spread") spread_of_string in
  let* rate_bps = flt "rate_bps" in
  let* delay = flt "delay" in
  let* gateways = Option.bind (find "gateways") gateways_of_string in
  let* loss = flt "loss" in
  let* corrupt = flt "corrupt" in
  let* duplicate = flt "duplicate" in
  let* dropper = Option.bind (find "dropper") dropper_of_string in
  let* ack_blackhole = Option.bind (find "ack_blackhole") blackhole_of_string in
  let* outage = Option.bind (find "outage") outage_of_string in
  let* flood = Option.bind (find "flood") flood_of_string in
  let* overlap = Option.bind (find "overlap") overlap_of_string in
  let* shed = Option.bind (find "shed") shed_of_string in
  let* crashes = Option.bind (find "crashes") crashes_of_string in
  let* snap_period = flt "snap_period" in
  let* fastpath = bol "fastpath" in
  let* byz = Option.bind (find "byz") byz_of_string in
  Some
    {
      seed;
      profile;
      data_len;
      elem_size;
      tpdu_elems;
      frame_bytes;
      mtu;
      window;
      rto;
      sack;
      adaptive;
      nack_delay;
      rto_adaptive;
      give_up_txs;
      state_budget;
      state_ttl;
      connections;
      reopen;
      paths;
      skew;
      jitter;
      spread;
      rate_bps;
      delay;
      gateways;
      loss;
      corrupt;
      duplicate;
      dropper;
      ack_blackhole;
      outage;
      flood;
      overlap;
      shed;
      crashes;
      snap_period;
      fastpath;
      byz;
    }

(* {2 Validation}

   [of_string] accepts any token-level well-formed schedule; [validate]
   is the semantic gate the CLI runs before handing a replayed schedule
   to the driver, so a hand-edited spec fails with one readable line
   instead of an [Invalid_argument] from deep inside the transport. *)

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob name p =
    if p < 0.0 || p > 1.0 then err "%s must be within [0, 1]" name else Ok ()
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  if s.data_len < 1 then err "data_len must be >= 1"
  else if s.elem_size < 4 || s.elem_size mod 4 <> 0 then
    err "elem_size must be a positive multiple of 4"
  else if s.frame_bytes < s.elem_size || s.frame_bytes mod s.elem_size <> 0 then
    err "frame_bytes must be a positive multiple of elem_size"
  else if s.tpdu_elems < 1 then err "tpdu_elems must be >= 1"
  else if s.tpdu_elems > Edc.Invariant.max_tpdu_elems ~size:s.elem_size then
    err "tpdu_elems exceeds the error-detection invariant for elem_size %d"
      s.elem_size
  else if s.mtu <= Wire.header_size then
    err "mtu must exceed the %d-byte chunk header" Wire.header_size
  else if s.window < 1 then err "window must be >= 1"
  else if s.rto <= 0.0 then err "rto must be positive"
  else if s.nack_delay <= 0.0 then err "nack_delay must be positive"
  else if s.give_up_txs < 1 then err "give_up_txs must be >= 1"
  else if s.state_budget < 0 then err "state_budget cannot be negative"
  else if s.state_ttl <= 0.0 then err "state_ttl must be positive"
  else if s.connections < 1 then err "connections must be >= 1"
  else if s.paths < 1 then err "paths must be >= 1"
  else if s.skew < 0.0 then err "skew cannot be negative"
  else if s.jitter < 0.0 then err "jitter cannot be negative"
  else if s.rate_bps <= 0.0 then err "rate_bps must be positive"
  else if s.delay < 0.0 then err "delay cannot be negative"
  else if
    match s.spread with Route_change p -> p <= 0.0 | _ -> false
  then err "route-change period must be positive"
  else if List.exists (fun g -> g.gw_mtu <= Wire.header_size) s.gateways then
    err "every gateway mtu must exceed the %d-byte chunk header"
      Wire.header_size
  else if List.exists (fun g -> g.gw_batch < 1) s.gateways then
    err "gateway batch must be >= 1"
  else
    let* () = prob "loss" s.loss in
    let* () = prob "corrupt" s.corrupt in
    let* () = prob "duplicate" s.duplicate in
    let* () =
      match s.dropper with
      | Some d -> prob "dropper loss" d.drop_loss
      | None -> Ok ()
    in
    let* () =
      match s.ack_blackhole with
      | Some (t0, dur) ->
          if t0 < 0.0 || dur < 0.0 then
            err "ack_blackhole start and duration cannot be negative"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      match s.outage with
      | Some o ->
          if o.out_start < 0.0 || o.out_duration < 0.0 then
            err "outage start and duration cannot be negative"
          else if o.out_hold && o.out_duration = infinity then
            err "a hold outage cannot last forever"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      match s.flood with
      | Some f ->
          if f.flood_rate <= 0.0 then err "flood_rate must be positive"
          else if f.flood_stop < 0.0 then err "flood_stop cannot be negative"
          else if f.flood_conns < 1 then err "flood_conns must be >= 1"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      match s.overlap with
      | Some o ->
          if o.ov_rate <= 0.0 then err "overlap rate must be positive"
          else if o.ov_stop < 0.0 then err "overlap stop cannot be negative"
          else if not (o.ov_dup || o.ov_forge || o.ov_resplit) then
            err "overlap must enable at least one mode"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      match s.byz with
      | Some b ->
          if b.bz_rate <= 0.0 then err "byz rate must be positive"
          else if b.bz_stop < 0.0 then err "byz stop cannot be negative"
          else if b.bz_conns < 1 then err "byz conns must be >= 1"
          else if s.shed <> None then
            err
              "byz cannot combine with shed (shed is specified for the \
               single-transfer path; byz forces the multi path)"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      match s.shed with
      | Some sh ->
          if sh.sh_every < 1 then err "shed every must be >= 1"
          else if sh.sh_txs < 1 then err "shed txs must be >= 1"
          else if sh.sh_txs >= s.give_up_txs then
            err "shed txs must be < give_up_txs"
          else if s.adaptive then
            err
              "shed requires adaptive=false (the shed span is derived from \
               the fixed TPDU partition)"
          else if s.connections > 1 || s.reopen then
            err "shed is specified for the single-transfer path only"
          else if s.crashes <> [] then
            err
              "shed cannot combine with crashes (a restored receiver \
               loses its shed cover while the sender, already shed-ACKed, \
               never resends the signal)"
          else Ok ()
      | None -> Ok ()
    in
    let* () =
      if
        List.exists
          (fun c ->
            c.cr_time <= 0.0 || c.cr_restart <= 0.0
            || Float.is_nan c.cr_time || Float.is_nan c.cr_restart
            || c.cr_restart = infinity)
          s.crashes
      then err "crash times and downtimes must be positive and finite"
      else Ok ()
    in
    let* () =
      let rec ordered = function
        | a :: (b :: _ as rest) ->
            if b.cr_time <= a.cr_time +. a.cr_restart then
              err "crashes must be ordered and non-overlapping"
            else ordered rest
        | _ -> Ok ()
      in
      ordered s.crashes
    in
    if s.snap_period < 0.0 || Float.is_nan s.snap_period then
      err "snap_period cannot be negative"
    else Ok ()
