open Labelling

type profile = Clean | Lossy | Hostile

let profile_name = function
  | Clean -> "clean"
  | Lossy -> "lossy"
  | Hostile -> "hostile"

let profile_of_name = function
  | "clean" -> Some Clean
  | "lossy" -> Some Lossy
  | "hostile" -> Some Hostile
  | _ -> None

type spread = Round_robin | Random_path | Route_change of float

type gateway = {
  gw_policy : Repack.policy;
  gw_mtu : int;
  gw_batch : int;
}

type dropper = { drop_mode : Netsim.Dropper.mode; drop_loss : float }

type t = {
  seed : int;
  profile : profile;
  (* transfer *)
  data_len : int;
  elem_size : int;
  tpdu_elems : int;
  frame_bytes : int;
  mtu : int;
  window : int;
  rto : float;
  sack : bool;
  adaptive : bool;
  nack_delay : float;
  (* topology *)
  paths : int;
  skew : float;
  jitter : float;
  spread : spread;
  rate_bps : float;
  delay : float;
  gateways : gateway list;
  (* faults *)
  loss : float;
  corrupt : float;
  duplicate : float;
  dropper : dropper option;
}

let faultless s =
  s.loss = 0.0 && s.corrupt = 0.0 && s.duplicate = 0.0 && s.jitter = 0.0
  && s.dropper = None

let config_of s =
  {
    Transport.Chunk_transport.conn_id = 1;
    elem_size = s.elem_size;
    tpdu_elems = s.tpdu_elems;
    frame_bytes = s.frame_bytes;
    mtu = s.mtu;
    window = s.window;
    rto = s.rto;
    adaptive = s.adaptive;
    sack = s.sack;
    nack_delay = s.nack_delay;
  }

(* The payload both the driver (what gets sent) and the model (what must
   come out) derive from the schedule alone. *)
let data_of s =
  let rng = Netsim.Rng.create ~seed:(s.seed lxor 0x0DA7A5EED) in
  Bytes.init s.data_len (fun _ -> Netsim.Rng.byte rng)

(* An RTO that a fault-free run can never beat: round trip across every
   hop, full inter-path skew, the gateways' batching delay, and the
   serialisation of a whole window (amplified for envelope-per-chunk
   repacking), with margin.  Clean-profile oracles assert {e zero}
   retransmissions, so this must be an overestimate, never a guess. *)
let estimate_rto s =
  let hops = float_of_int (List.length s.gateways + 2) in
  let tpdu_bytes = s.tpdu_elems * s.elem_size in
  let inflight = float_of_int (s.window * (tpdu_bytes + 2048)) in
  let amplification =
    if
      List.exists
        (fun g -> g.gw_policy = Repack.One_per_packet || g.gw_mtu < 512)
        s.gateways
    then 8.0
    else 2.0
  in
  let ser = inflight *. 8.0 /. s.rate_bps *. amplification in
  let t =
    0.05
    +. (2.0 *. s.delay *. hops)
    +. (float_of_int s.paths *. s.skew)
    +. (12.0 *. s.jitter)
    +. (0.02 *. hops) +. ser
  in
  Float.min 2.0 t

let float_in rng lo hi = lo +. Netsim.Rng.float rng (hi -. lo)
let int_in rng lo hi = lo + Netsim.Rng.int rng (hi - lo + 1)

let gen_gateway rng =
  let gw_policy =
    match Netsim.Rng.int rng 3 with
    | 0 -> Repack.One_per_packet
    | 1 -> Repack.Combine
    | _ -> Repack.Reassemble
  in
  {
    gw_policy;
    gw_mtu = int_in rng 160 2048;
    gw_batch = 1 + Netsim.Rng.int rng 4;
  }

let generate ~profile ~seed =
  let rng = Netsim.Rng.create ~seed:(seed lxor 0x5C4ED) in
  let elem_size = if Netsim.Rng.bool rng 0.5 then 4 else 8 in
  let tpdu_elems =
    int_in rng 16 (min 512 (Edc.Invariant.max_tpdu_elems ~size:elem_size))
  in
  let frame_bytes = elem_size * int_in rng 8 256 in
  let data_len =
    match profile with
    | Clean -> int_in rng 1 32768
    | Lossy | Hostile -> int_in rng 1 16384
  in
  let gateways = List.init (Netsim.Rng.int rng 4) (fun _ -> gen_gateway rng) in
  let jitter =
    match profile with
    | Clean -> 0.0
    | Lossy | Hostile -> if Netsim.Rng.bool rng 0.5 then float_in rng 0.0 3e-4 else 0.0
  in
  let dropper =
    match profile with
    | Clean -> None
    | Lossy | Hostile ->
        if Netsim.Rng.bool rng 0.3 then
          Some
            {
              drop_mode =
                (if Netsim.Rng.bool rng 0.5 then Netsim.Dropper.Whole_tpdu
                 else Netsim.Dropper.Random);
              drop_loss = float_in rng 0.005 0.05;
            }
        else None
  in
  let base =
    {
      seed;
      profile;
      data_len;
      elem_size;
      tpdu_elems;
      frame_bytes;
      mtu = int_in rng 256 2048;
      window = int_in rng 1 8;
      rto = 0.0 (* filled below *);
      sack = Netsim.Rng.bool rng 0.5;
      adaptive = Netsim.Rng.bool rng 0.3;
      nack_delay = 0.0 (* filled below *);
      paths = int_in rng 1 8;
      skew = float_in rng 0.0 5e-4;
      jitter;
      spread =
        (match Netsim.Rng.int rng 3 with
        | 0 -> Round_robin
        | 1 -> Random_path
        | _ -> Route_change (float_in rng 0.005 0.1));
      rate_bps = float_in rng 5e7 6e8;
      delay = float_in rng 1e-4 2e-3;
      gateways;
      loss =
        (match profile with
        | Clean -> 0.0
        | Lossy | Hostile -> if Netsim.Rng.bool rng 0.7 then float_in rng 0.0 0.08 else 0.0);
      corrupt =
        (match profile with
        | Clean | Lossy -> 0.0
        | Hostile -> float_in rng 0.002 0.04);
      duplicate =
        (match profile with
        | Clean -> 0.0
        | Lossy | Hostile -> if Netsim.Rng.bool rng 0.5 then float_in rng 0.0 0.05 else 0.0);
      dropper;
    }
  in
  let rto = estimate_rto base in
  (* A clean run must never see a gap last long enough to NACK; a faulty
     run recovers faster by NACKing early. *)
  let nack_delay = if faultless base then rto else Float.max 0.01 (rto /. 4.0) in
  { base with rto; nack_delay }

(* {2 Flat text round-trip}

   One [key=value] token per field, space-separated, order fixed.
   Floats print as %.17g so parsing reproduces them bit-exactly — a
   shrunk counterexample must replay the violation byte for byte. *)

let policy_name = function
  | Repack.One_per_packet -> "one"
  | Repack.Combine -> "combine"
  | Repack.Reassemble -> "reassemble"

let policy_of_name = function
  | "one" -> Some Repack.One_per_packet
  | "combine" -> Some Repack.Combine
  | "reassemble" -> Some Repack.Reassemble
  | _ -> None

let spread_to_string = function
  | Round_robin -> "rr"
  | Random_path -> "random"
  | Route_change t -> Printf.sprintf "change:%.17g" t

let spread_of_string str =
  match str with
  | "rr" -> Some Round_robin
  | "random" -> Some Random_path
  | _ -> (
      match String.index_opt str ':' with
      | Some i when String.sub str 0 i = "change" -> (
          match
            float_of_string_opt
              (String.sub str (i + 1) (String.length str - i - 1))
          with
          | Some t -> Some (Route_change t)
          | None -> None)
      | _ -> None)

let gateways_to_string gws =
  if gws = [] then "-"
  else
    String.concat ","
      (List.map
         (fun g ->
           Printf.sprintf "%s:%d:%d" (policy_name g.gw_policy) g.gw_mtu
             g.gw_batch)
         gws)

let gateways_of_string str =
  if str = "-" then Some []
  else
    let parse_one tok =
      match String.split_on_char ':' tok with
      | [ p; mtu; batch ] -> (
          match (policy_of_name p, int_of_string_opt mtu, int_of_string_opt batch)
          with
          | Some gw_policy, Some gw_mtu, Some gw_batch ->
              Some { gw_policy; gw_mtu; gw_batch }
          | _ -> None)
      | _ -> None
    in
    let toks = String.split_on_char ',' str in
    let parsed = List.filter_map parse_one toks in
    if List.length parsed = List.length toks then Some parsed else None

let dropper_to_string = function
  | None -> "-"
  | Some { drop_mode = Netsim.Dropper.Random; drop_loss } ->
      Printf.sprintf "random:%.17g" drop_loss
  | Some { drop_mode = Netsim.Dropper.Whole_tpdu; drop_loss } ->
      Printf.sprintf "tpdu:%.17g" drop_loss

let dropper_of_string str =
  if str = "-" then Some None
  else
    match String.split_on_char ':' str with
    | [ "random"; p ] ->
        Option.map
          (fun drop_loss ->
            Some { drop_mode = Netsim.Dropper.Random; drop_loss })
          (float_of_string_opt p)
    | [ "tpdu"; p ] ->
        Option.map
          (fun drop_loss ->
            Some { drop_mode = Netsim.Dropper.Whole_tpdu; drop_loss })
          (float_of_string_opt p)
    | _ -> None

let to_string s =
  String.concat " "
    [
      Printf.sprintf "seed=%d" s.seed;
      Printf.sprintf "profile=%s" (profile_name s.profile);
      Printf.sprintf "data_len=%d" s.data_len;
      Printf.sprintf "elem_size=%d" s.elem_size;
      Printf.sprintf "tpdu_elems=%d" s.tpdu_elems;
      Printf.sprintf "frame_bytes=%d" s.frame_bytes;
      Printf.sprintf "mtu=%d" s.mtu;
      Printf.sprintf "window=%d" s.window;
      Printf.sprintf "rto=%.17g" s.rto;
      Printf.sprintf "sack=%b" s.sack;
      Printf.sprintf "adaptive=%b" s.adaptive;
      Printf.sprintf "nack_delay=%.17g" s.nack_delay;
      Printf.sprintf "paths=%d" s.paths;
      Printf.sprintf "skew=%.17g" s.skew;
      Printf.sprintf "jitter=%.17g" s.jitter;
      Printf.sprintf "spread=%s" (spread_to_string s.spread);
      Printf.sprintf "rate_bps=%.17g" s.rate_bps;
      Printf.sprintf "delay=%.17g" s.delay;
      Printf.sprintf "gateways=%s" (gateways_to_string s.gateways);
      Printf.sprintf "loss=%.17g" s.loss;
      Printf.sprintf "corrupt=%.17g" s.corrupt;
      Printf.sprintf "duplicate=%.17g" s.duplicate;
      Printf.sprintf "dropper=%s" (dropper_to_string s.dropper);
    ]

let of_string str =
  let kvs =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' (String.trim str))
  in
  let find k = List.assoc_opt k kvs in
  let ( let* ) = Option.bind in
  let int k = Option.bind (find k) int_of_string_opt in
  let flt k = Option.bind (find k) float_of_string_opt in
  let bol k = Option.bind (find k) bool_of_string_opt in
  let* seed = int "seed" in
  let* profile = Option.bind (find "profile") profile_of_name in
  let* data_len = int "data_len" in
  let* elem_size = int "elem_size" in
  let* tpdu_elems = int "tpdu_elems" in
  let* frame_bytes = int "frame_bytes" in
  let* mtu = int "mtu" in
  let* window = int "window" in
  let* rto = flt "rto" in
  let* sack = bol "sack" in
  let* adaptive = bol "adaptive" in
  let* nack_delay = flt "nack_delay" in
  let* paths = int "paths" in
  let* skew = flt "skew" in
  let* jitter = flt "jitter" in
  let* spread = Option.bind (find "spread") spread_of_string in
  let* rate_bps = flt "rate_bps" in
  let* delay = flt "delay" in
  let* gateways = Option.bind (find "gateways") gateways_of_string in
  let* loss = flt "loss" in
  let* corrupt = flt "corrupt" in
  let* duplicate = flt "duplicate" in
  let* dropper = Option.bind (find "dropper") dropper_of_string in
  Some
    {
      seed;
      profile;
      data_len;
      elem_size;
      tpdu_elems;
      frame_bytes;
      mtu;
      window;
      rto;
      sack;
      adaptive;
      nack_delay;
      paths;
      skew;
      jitter;
      spread;
      rate_bps;
      delay;
      gateways;
      loss;
      corrupt;
      duplicate;
      dropper;
    }
