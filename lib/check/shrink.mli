(** Greedy schedule minimisation.

    Given a schedule whose run violates the {!Oracle}, repeatedly apply
    simplifying rewrites (turn faults off, collapse the topology, halve
    the data) and keep any rewrite whose re-run still violates, until a
    fixpoint or the run budget.  The result replays from its (seed,
    schedule) pair alone: [Schedule.to_string] it, hand it to
    [chunks_soak --replay]. *)

type result = {
  schedule : Schedule.t;  (** the minimised schedule *)
  violations : Oracle.violation list;  (** what it still violates *)
  runs : int;  (** driver runs spent shrinking *)
}

val shrink :
  ?mutation:Driver.mutation ->
  ?max_runs:int ->
  Schedule.t ->
  Oracle.violation list ->
  result
(** [shrink s violations] — [violations] must be the non-empty result of
    checking [s]'s own run (with the same [mutation]).  Default
    [max_runs] 200. *)
