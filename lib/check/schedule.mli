(** Adversarial run descriptions for the conformance harness.

    A schedule is everything a {!Driver} run depends on: the transfer
    parameters, the network topology (multipath spread/skew/jitter, a
    chain of repacking gateways), and the fault mix.  Together with its
    [seed] it determines a run {e completely} — the same (seed,
    schedule) pair replays the same packet-by-packet execution, which is
    what makes shrunk counterexamples replayable. *)

type profile =
  | Clean  (** no faults: reordering and refragmentation only *)
  | Lossy  (** loss, duplication, jitter, congestion drops — no corruption *)
  | Hostile  (** lossy plus random bit corruption in flight *)

val profile_name : profile -> string
val profile_of_name : string -> profile option

type spread = Round_robin | Random_path | Route_change of float

type gateway = {
  gw_policy : Labelling.Repack.policy;
  gw_mtu : int;
  gw_batch : int;  (** arriving packets held before re-enveloping *)
}

type dropper = { drop_mode : Netsim.Dropper.mode; drop_loss : float }

type t = {
  seed : int;
  profile : profile;
  data_len : int;
  elem_size : int;
  tpdu_elems : int;
  frame_bytes : int;
  mtu : int;
  window : int;
  rto : float;
  sack : bool;
  adaptive : bool;
  nack_delay : float;
  paths : int;
  skew : float;
  jitter : float;
  spread : spread;
  rate_bps : float;
  delay : float;
  gateways : gateway list;
  loss : float;
  corrupt : float;
  duplicate : float;
  dropper : dropper option;
}

val generate : profile:profile -> seed:int -> t
(** Draw a random schedule for the profile; all dimension constraints
    (element alignment, invariant-region TPDU bound, MTUs that hold a
    header) hold by construction, and {!t.rto} is an overestimate of the
    worst-case round trip so a fault-free run never retransmits. *)

val faultless : t -> bool
(** No fault of any kind is enabled (so the oracle may demand total
    silence: no retransmission, no NACK, no duplicate, no failure). *)

val config_of : t -> Transport.Chunk_transport.config
val data_of : t -> bytes
(** The transfer payload, derived deterministically from the seed. *)

val estimate_rto : t -> float

val to_string : t -> string
(** One-line [key=value] form; floats are printed with enough digits to
    round-trip bit-exactly. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any malformed token. *)
