(** Adversarial run descriptions for the conformance harness.

    A schedule is everything a {!Driver} run depends on: the transfer
    parameters, the control-plane policy (RTO estimation, give-up,
    receiver state budget/TTL, number of connections), the network
    topology (multipath spread/skew/jitter, a chain of repacking
    gateways), and the fault mix.  Together with its [seed] it
    determines a run {e completely} — the same (seed, schedule) pair
    replays the same packet-by-packet execution, which is what makes
    shrunk counterexamples replayable. *)

type profile =
  | Clean  (** no faults: reordering and refragmentation only *)
  | Lossy  (** loss, duplication, jitter, congestion drops — no corruption *)
  | Hostile  (** lossy plus random bit corruption in flight *)
  | Hostile_flood
      (** hostile plus a demultiplexing receiver under attack: several
          concurrent connections (sometimes closed and re-opened with
          the same C.ID), a connection-flood adversary forging Opens and
          never-completing TPDUs, a byte budget on receiver state, and
          sometimes a permanently dead ACK path (the sender must give up
          cleanly, the receiver must evict) *)
  | Outage_recover
      (** a scheduled forward-path outage (packets dropped, or held and
          replayed at resume); the transfer must recover and complete —
          give-up is a violation *)
  | Crash_restart
      (** the receiver endpoint crashes mid-transfer (one to three
          times), losing all in-memory state and any traffic in its down
          window, then restarts from its journaled snapshot; the
          transfer must still complete with no double delivery and no
          papered-over hole *)
  | Crash_flood
      (** crash-restart layered on a demultiplexing receiver under
          connection-flood pressure with a state budget: restored state
          must re-fit the budget and restored connections must survive
          the flood's displacement churn *)
  | Overlap_hostile
      (** hostile (light loss, corruption, duplication) plus an overlap
          adversary synthesizing overlapping retransmissions with
          {e conflicting} bytes: divergent duplicates of observed
          chunks, forged corroborated TPDUs over observed connection
          ranges, and overlapping gateway-style re-split chains — the
          first-verified-wins overlap policy must keep delivery
          byte-exact and arrival-order deterministic *)
  | Degrade_hostile
      (** graceful degradation under sustained congestion: a shed
          contract marks every N-th TPDU sheddable, a significance-aware
          dropper congestion-drops only sheddable traffic at 10-30%, and
          the sender's shed policy deliberately abandons sheddable TPDUs
          after a few transmissions — the stream must still complete,
          every Critical/Normal byte must arrive byte-exact, and only
          declared-sheddable spans may be missing *)
  | Fastpath_hostile
      (** the flow-cache fast path under hostile fire: every packet is
          delivered through {!Transport.Multi.ingest} /
          {!Transport.Chunk_transport.Receiver.ingest} while corruption,
          loss, duplication and congestion drops attack the cached label
          prefixes, with a mix of single- and multi-connection runs
          (sometimes with C.ID reuse) churning the connection cache —
          and the [fastpath-coherence] oracle row replays the whole
          schedule with the cache off, demanding identical delivery and
          identical verdicts *)
  | Byzantine_hostile
      (** a wire-conformant but protocol-violating peer alongside the
          honest population: Open/Close flapping that parks archived
          epochs, label-plausible garbage TPDUs sealed with
          self-consistent parities, ACKs for never-sent TPDUs and
          contradictory ACK/NACK pairs, forged [Shed_tpdu] naming honest
          Critical streams, and verbatim replays of archived-epoch
          signals — the receiver's anomaly scoring must quarantine the
          byzantine connections while the [blast-radius] oracle row
          re-runs the schedule without the attacker and demands
          identical honest outcomes *)

val profile_name : profile -> string
val profile_of_name : string -> profile option

val all_profiles : profile list
(** Every profile, in presentation order. *)

type spread = Round_robin | Random_path | Route_change of float

type gateway = {
  gw_policy : Labelling.Repack.policy;
  gw_mtu : int;
  gw_batch : int;  (** arriving packets held before re-enveloping *)
}

type dropper = { drop_mode : Netsim.Dropper.mode; drop_loss : float }

type outage = {
  out_hold : bool;  (** pause-and-replay instead of discard *)
  out_start : float;
  out_duration : float;
}

type flood = {
  flood_rate : float;  (** forged packets per simulated second *)
  flood_stop : float;
  flood_conns : int;  (** distinct bogus connection ids in play *)
}

type crash = {
  cr_time : float;  (** the receiver endpoint dies here (simulated s) *)
  cr_restart : float;
      (** downtime before it restarts from its persisted image *)
}

type overlap = {
  ov_rate : float;  (** injections per simulated second *)
  ov_stop : float;  (** injection ends here *)
  ov_dup : bool;  (** divergent duplicates of observed chunks *)
  ov_forge : bool;  (** forged corroborated TPDUs over observed ranges *)
  ov_resplit : bool;  (** overlapping gateway-style re-split chains *)
}

type shed = {
  sh_every : int;
      (** every [sh_every]-th TPDU is declared sheddable (the last TPDU
          never is — it carries the C.ST stream-end marker) *)
  sh_txs : int;
      (** the sender sheds a sheddable TPDU after this many
          transmissions (must be [< give_up_txs]) *)
}

type byz = {
  bz_rate : float;  (** hostile actions per simulated second *)
  bz_stop : float;  (** the byzantine peer goes quiet here *)
  bz_conns : int;  (** distinct byzantine connection ids in play *)
  bz_acks : bool;
      (** ACKs for never-sent TPDUs and contradictory ACK/NACK pairs on
          the reverse path *)
  bz_sheds : bool;  (** forged [Shed_tpdu] naming honest Critical TPDUs *)
  bz_replay : bool;  (** verbatim replays of signals from archived epochs *)
  bz_garbage : bool;
      (** extra label-plausible garbage TPDUs sealed with self-consistent
          WSC-2 parities (they verify; the labels are the only lie) *)
}

type t = {
  seed : int;
  profile : profile;
  data_len : int;
  elem_size : int;
  tpdu_elems : int;
  frame_bytes : int;
  mtu : int;
  window : int;
  rto : float;
  sack : bool;
  adaptive : bool;
  nack_delay : float;
  rto_adaptive : bool;  (** Jacobson/Karn RTO estimation on the sender *)
  give_up_txs : int;  (** transmissions before a TPDU is abandoned *)
  state_budget : int;  (** receiver soft-state budget, bytes; 0 = unlimited *)
  state_ttl : float;  (** receiver soft-state idle deadline, seconds *)
  connections : int;  (** concurrent legitimate connections *)
  reopen : bool;  (** close connection 1 and re-open it (C.ID reuse) *)
  paths : int;
  skew : float;
  jitter : float;
  spread : spread;
  rate_bps : float;
  delay : float;
  gateways : gateway list;
  loss : float;
  corrupt : float;
  duplicate : float;
  dropper : dropper option;
  ack_blackhole : (float * float) option;
      (** reverse-path dead window (start, duration; duration may be
          [infinity]) *)
  outage : outage option;  (** forward-path outage window *)
  flood : flood option;  (** connection-flood adversary *)
  overlap : overlap option;  (** overlap adversary ({!Netsim.Overlapper}) *)
  shed : shed option;
      (** partial-reliability contract (which TPDUs are sheddable and
          when the sender sheds them); requires [adaptive = false], the
          single-transfer path, and no crash events *)
  crashes : crash list;
      (** receiver crash-restart events, ordered, non-overlapping *)
  snap_period : float;
      (** full-snapshot interval, seconds; 0 = ACK journalling only *)
  fastpath : bool;
      (** deliver received packets through the flow-cache fast path
          ([ingest]) instead of [on_packet]; any schedule may draw it,
          and the [fastpath-coherence] oracle row re-runs the schedule
          with the cache off and demands identical outcomes *)
  byz : byz option;
      (** byzantine peer ({!Netsim.Byzantine}): valid wire format,
          violated protocol; forces the multi path, and the
          [blast-radius] oracle row re-runs the schedule with the peer
          removed and demands identical honest outcomes *)
}

val generate : profile:profile -> seed:int -> t
(** Draw a random schedule for the profile; all dimension constraints
    (element alignment, invariant-region TPDU bound, MTUs that hold a
    header, TTLs beyond the longest legitimate quiet period, budgets
    above the legitimate working set) hold by construction, and {!t.rto}
    is an overestimate of the worst-case round trip so a fault-free run
    never retransmits. *)

val faultless : t -> bool
(** No fault of any kind is enabled (so the oracle may demand total
    silence: no retransmission, no NACK, no duplicate, no failure). *)

val multi_mode : t -> bool
(** The schedule exercises the demultiplexing receiver (more than one
    connection, connection reuse, a flood adversary, or a byzantine
    peer) and runs through the driver's multi-connection path. *)

val config_of : t -> Transport.Chunk_transport.config
(** Includes the shed contract: [classify] marks {!sheddable_tid} T.IDs
    [Sheddable 1] and [shed_txs] arms the sender's shed policy, so both
    endpoints (and the oracle) derive the same contract from the
    schedule alone. *)

val n_elems : t -> int
(** Elements of the single-transfer stream after framing (mirrors the
    framer's padding rules; what {!Model} calls [elems]). *)

val n_tpdus : t -> int
(** TPDUs of the single-transfer stream under the fixed partition. *)

val sheddable_tid : t -> t_id:int -> bool
(** Whether the shed contract declares [t_id] sheddable: every
    [sh_every]-th TPDU except the last (the C.ST carrier).  Always false
    without a shed spec. *)

val data_of : t -> bytes
(** The transfer payload, derived deterministically from the seed
    (connection 1, epoch 0). *)

val data_of_conn : t -> conn:int -> epoch:int -> bytes
(** The payload of one (connection, epoch) stream. *)

val estimate_rto : t -> float

val estimate_budget : t -> int
(** The state budget {!generate} gives flood schedules: twice the
    legitimate working set plus slack. *)

val to_string : t -> string
(** One-line [key=value] form; floats are printed with enough digits to
    round-trip bit-exactly. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any malformed or unknown
    token. *)

val unknown_fields : string -> string list
(** The tokens of a replay spec that name no known schedule field
    (including bare tokens with no [=]) — what made {!of_string} return
    [None] on an otherwise well-formed line, for a readable CLI
    diagnostic. *)

val validate : t -> (unit, string) result
(** Semantic gate over a parsed schedule: every dimension constraint
    the driver and transport rely on (element alignment, the
    invariant-region TPDU bound, MTUs that hold a header, positive
    timers, probabilities in [0, 1], ordered non-overlapping crashes).
    [generate] satisfies it by construction; hand-edited replay specs
    get one readable line instead of an exception from deep inside the
    transport. *)
