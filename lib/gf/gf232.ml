type t = int

let mask32 = 0xFFFF_FFFF

(* x^32 = x^7 + x^3 + x^2 + 1 (mod m), i.e. the reduction constant 0x8d. *)
let reduction = 0x8d

let zero = 0
let one = 1
let alpha = 2

let of_int32_bits i = Int32.to_int i land mask32
let to_int32_bits a = Int32.of_int a

let is_valid a = a >= 0 && a land mask32 = a

let add a b = a lxor b

(* Branchless shift-and-reduce: the overflowing top bit selects the
   reduction constant through a mask instead of a (50% mispredicted on
   random data) conditional. *)
let xtime a =
  let shifted = (a lsl 1) land mask32 in
  shifted lxor (-((a lsr 31) land 1) land reduction)

(* The bit-serial reference implementation.  It is the oracle every
   table below is generated from and differentially tested against
   (test/test_gf_fast.ml); the table-driven fast paths further down are
   what the hot paths use. *)
module Ref = struct
  (* Russian-peasant multiplication with reduction folded into every
     step; all intermediates stay within 32 bits, so native ints are
     safe. *)
  let mul a b =
    let acc = ref 0 in
    let a = ref a in
    let b = ref b in
    while !b <> 0 do
      if !b land 1 = 1 then acc := !acc lxor !a;
      b := !b lsr 1;
      a := xtime !a
    done;
    !acc

  (* alpha^(2^k) for k = 0..61, so alpha_pow runs in O(popcount i) muls. *)
  let alpha_squares =
    let tbl = Array.make 62 0 in
    tbl.(0) <- alpha;
    for k = 1 to 61 do
      tbl.(k) <- mul tbl.(k - 1) tbl.(k - 1)
    done;
    tbl

  let alpha_pow i =
    if i < 0 then invalid_arg "Gf232.alpha_pow: negative exponent";
    let acc = ref one in
    let i = ref i in
    let k = ref 0 in
    while !i > 0 do
      if !i land 1 = 1 then acc := mul !acc alpha_squares.(!k);
      i := !i lsr 1;
      incr k
    done;
    !acc
end

(* --- table-driven fast paths -------------------------------------- *)

(* t*x^32 mod m for the nibble t that overflows a 4-bit shift.  Both
   factors have degree <= 7, so the field product equals the plain
   carry-less product. *)
let top4_overflow = Array.init 16 (fun n -> Ref.mul n reduction)

(* One 4-bit shift-and-reduce step (multiply by x^4). *)
let[@inline] mul_x4 v =
  ((v lsl 4) land mask32) lxor Array.unsafe_get top4_overflow (v lsr 28)

(* Windowed multiplication, 4-bit window over [b]: build the 16 nibble
   multiples of [a] with three shift-reduce doublings, then fold the 8
   nibbles of [b] with one table-driven x^4 step each.  Replaces the 32
   branchy shift/reduce iterations of [Ref.mul] on the anchoring
   multiplies of the WSC-2 kernels. *)
let mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let w = Array.make 16 0 in
    let a2 = xtime a in
    let a4 = xtime a2 in
    let a8 = xtime a4 in
    w.(1) <- a;
    w.(2) <- a2;
    w.(3) <- a2 lxor a;
    w.(4) <- a4;
    w.(5) <- a4 lxor a;
    w.(6) <- a4 lxor a2;
    w.(7) <- a4 lxor a2 lxor a;
    w.(8) <- a8;
    w.(9) <- a8 lxor a;
    w.(10) <- a8 lxor a2;
    w.(11) <- a8 lxor a2 lxor a;
    w.(12) <- a8 lxor a4;
    w.(13) <- a8 lxor a4 lxor a;
    w.(14) <- a8 lxor a4 lxor a2;
    w.(15) <- a8 lxor a4 lxor a2 lxor a;
    let acc = ref (Array.unsafe_get w ((b lsr 28) land 0xF)) in
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 24) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 20) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 16) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 12) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 8) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w ((b lsr 4) land 0xF);
    acc := mul_x4 !acc lxor Array.unsafe_get w (b land 0xF);
    !acc
  end

let pow a n =
  if n < 0 then invalid_arg "Gf232.pow: negative exponent";
  let acc = ref one in
  let base = ref a in
  let n = ref n in
  while !n > 0 do
    if !n land 1 = 1 then acc := mul !acc !base;
    base := mul !base !base;
    n := !n lsr 1
  done;
  !acc

(* Memoized weight cache: alpha^i for the whole Fig 5 position layout
   (data positions 0..16383, label positions 16384..16386, (X.ID, X.ST)
   pairs up to 16387 + 2*16383 + 1 = 49154), with slack.  Filled once
   at module init by iterated shift-reduce; immutable afterwards, so it
   is safe to share across domains (Parverify workers). *)
let weight_cache_size = 1 lsl 16

let weights =
  let w = Array.make weight_cache_size one in
  for i = 1 to weight_cache_size - 1 do
    w.(i) <- xtime w.(i - 1)
  done;
  w

let alpha_pow i =
  if i < 0 then invalid_arg "Gf232.alpha_pow: negative exponent";
  if i < weight_cache_size then Array.unsafe_get weights i
  else begin
    (* beyond the Fig 5 layout: square-and-multiply over the cached
       alpha^(2^k) ladder, with the windowed multiply *)
    let acc = ref one in
    let i = ref i in
    let k = ref 0 in
    while !i > 0 do
      if !i land 1 = 1 then acc := mul !acc Ref.alpha_squares.(!k);
      i := !i lsr 1;
      incr k
    done;
    !acc
  end

(* Byte-indexed lane tables for multiplication by alpha^8k, k = 1..8:
   entry (j*256 + c) of table k-1 is (c * x^(8j)) (x) alpha^8k, so a
   product decomposes into four lane lookups XORed together. *)
let mulx8_tables =
  Array.init 8 (fun k ->
      let m = Ref.alpha_pow (8 * (k + 1)) in
      let t = Array.make 1024 0 in
      for j = 0 to 3 do
        for c = 0 to 255 do
          t.((j lsl 8) lor c) <- Ref.mul m (c lsl (8 * j))
        done
      done;
      t)

let[@inline] mul_tabled t a =
  Array.unsafe_get t (a land 0xFF)
  lxor Array.unsafe_get t (0x100 lor ((a lsr 8) land 0xFF))
  lxor Array.unsafe_get t (0x200 lor ((a lsr 16) land 0xFF))
  lxor Array.unsafe_get t (0x300 lor ((a lsr 24) land 0xFF))

let mul_alpha8 a = mul_tabled (Array.unsafe_get mulx8_tables 0) a
let mul_alpha16 a = mul_tabled (Array.unsafe_get mulx8_tables 1) a
let mul_alpha24 a = mul_tabled (Array.unsafe_get mulx8_tables 2) a
let mul_alpha32 a = mul_tabled (Array.unsafe_get mulx8_tables 3) a
let mul_alpha40 a = mul_tabled (Array.unsafe_get mulx8_tables 4) a
let mul_alpha48 a = mul_tabled (Array.unsafe_get mulx8_tables 5) a
let mul_alpha56 a = mul_tabled (Array.unsafe_get mulx8_tables 6) a
let mul_alpha64 a = mul_tabled (Array.unsafe_get mulx8_tables 7) a

(* Overflow table for the slicing-by-8 WSC-2 accumulator
   (Wsc2.add_bytes): multiplying a 32-bit value v by x^k (k <= 8) is
   [(v lsl k) land mask32  lxor  ovf.(v lsr (32 - k))] — the k bits
   shifted out re-enter through their product with x^32 = 0x8d (mod m).
   Both factors have degree <= 7, so each entry is the plain carry-less
   product c * 0x8d; one 256-entry table covers every shift the kernel
   uses (alpha^1..alpha^7 symbol weights and the alpha^8 Horner step). *)
module Slice = struct
  let ovf = Array.init 256 (fun c -> Ref.mul c reduction)
end

let inv a =
  if a = zero then raise Division_by_zero;
  (* a^(2^32 - 2) = a^(order - 1) where order = 2^32 - 1. *)
  pow a 0xFFFF_FFFE

let div a b = mul a (inv b)

let pp fmt a = Format.fprintf fmt "0x%08x" a

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
