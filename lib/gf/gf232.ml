type t = int

let mask32 = 0xFFFF_FFFF

(* x^32 = x^7 + x^3 + x^2 + 1 (mod m), i.e. the reduction constant 0x8d. *)
let reduction = 0x8d

let zero = 0
let one = 1
let alpha = 2

let of_int32_bits i = Int32.to_int i land mask32
let to_int32_bits a = Int32.of_int a

let is_valid a = a >= 0 && a land mask32 = a

let add a b = a lxor b

let xtime a =
  let shifted = (a lsl 1) land mask32 in
  if a land 0x8000_0000 <> 0 then shifted lxor reduction else shifted

(* Russian-peasant multiplication with reduction folded into every step;
   all intermediates stay within 32 bits, so native ints are safe. *)
let mul a b =
  let acc = ref 0 in
  let a = ref a in
  let b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    b := !b lsr 1;
    a := xtime !a
  done;
  !acc

let pow a n =
  if n < 0 then invalid_arg "Gf232.pow: negative exponent";
  let acc = ref one in
  let base = ref a in
  let n = ref n in
  while !n > 0 do
    if !n land 1 = 1 then acc := mul !acc !base;
    base := mul !base !base;
    n := !n lsr 1
  done;
  !acc

(* alpha^(2^k) for k = 0..61, so alpha_pow runs in O(popcount i) muls. *)
let alpha_squares =
  let tbl = Array.make 62 0 in
  tbl.(0) <- alpha;
  for k = 1 to 61 do
    tbl.(k) <- mul tbl.(k - 1) tbl.(k - 1)
  done;
  tbl

let alpha_pow i =
  if i < 0 then invalid_arg "Gf232.alpha_pow: negative exponent";
  let acc = ref one in
  let i = ref i in
  let k = ref 0 in
  while !i > 0 do
    if !i land 1 = 1 then acc := mul !acc alpha_squares.(!k);
    i := !i lsr 1;
    incr k
  done;
  !acc

let inv a =
  if a = zero then raise Division_by_zero;
  (* a^(2^32 - 2) = a^(order - 1) where order = 2^32 - 1. *)
  pow a 0xFFFF_FFFE

let div a b = mul a (inv b)

let pp fmt a = Format.fprintf fmt "0x%08x" a

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
