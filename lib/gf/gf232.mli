(** Arithmetic in the finite field GF(2{^32}).

    Elements are polynomials over GF(2) of degree < 32, represented as the
    low 32 bits of a native [int] (bit [i] is the coefficient of [x{^i}]).
    Reduction is modulo the primitive pentanomial

    {[ m(x) = x^32 + x^7 + x^3 + x^2 + 1 ]}

    so the element [alpha] = [x] generates the multiplicative group of
    order 2{^32} - 1.  This field underlies the WSC-2 weighted-sum error
    detection code of Feldmeier (SIGCOMM '93) / McAuley: symbol [d_i] at
    position [i] is weighted by [alpha^i], which requires only [add],
    [mul] and fast exponentiation.

    Two implementations coexist.  {!Ref} is the bit-serial reference
    (shift-and-reduce per bit) — slow, obviously correct, and the oracle
    from which every table is generated.  The top-level operations are
    the table-driven fast paths: a 4-bit windowed {!mul}, a memoized
    {!alpha_pow} weight cache covering the whole Fig 5 position layout,
    and byte-indexed tables ({!mul_alpha8} … {!mul_alpha64}, {!Slice})
    for the slicing-by-8 WSC-2 accumulation kernel.  All
    tables are built once at module initialisation and immutable
    afterwards, so they are safe to share across domains. *)

type t = int
(** A field element; always in the range [0, 0xFFFF_FFFF]. *)

val zero : t
(** The additive identity. *)

val one : t
(** The multiplicative identity. *)

val alpha : t
(** The generator [x] (the polynomial of degree 1). *)

val of_int32_bits : int32 -> t
(** Reinterpret the 32 bits of an [int32] as a field element. *)

val to_int32_bits : t -> int32
(** Inverse of {!of_int32_bits}. *)

val is_valid : t -> bool
(** [is_valid a] is [true] iff [a] is a normalised element (fits in 32
    bits and is non-negative). *)

val add : t -> t -> t
(** Field addition = polynomial addition over GF(2) = bitwise XOR.
    Every element is its own additive inverse, so [add] is also
    subtraction. *)

val xtime : t -> t
(** [xtime a] is [mul alpha a]: one branchless shift-and-reduce step.
    This is the cheap incremental weight update used when accumulating
    consecutive symbol positions. *)

val mul : t -> t -> t
(** Carry-less polynomial multiplication reduced modulo [m(x)].
    Table-driven: a 4-bit window over the second operand — the 16
    nibble multiples of the first operand are built with three
    shift-reduce doublings, then folded with one table-driven [x^4]
    step per nibble.  Bit-identical to {!Ref.mul} on valid elements
    (differentially tested). *)

val pow : t -> int -> t
(** [pow a n] is [a] raised to the [n]-th power by square-and-multiply.
    [n] must be non-negative.  [pow a 0 = one] (including for [a = zero],
    by convention). *)

val alpha_pow : int -> t
(** [alpha_pow i] is [alpha] to the [i]-th power — the WSC-2 weight of
    position [i].  Positions below [2{^16}] (the entire Fig 5 layout:
    data 0‥16383, labels 16384‥16386, boundary pairs up to 49154) are a
    single lookup in a precomputed weight cache; larger exponents fall
    back to square-and-multiply over the [alpha{^2{^k}}] ladder. *)

val mul_alpha8 : t -> t
(** [mul_alpha8 a = mul a (alpha_pow 8)] via four byte-indexed lane
    lookups (one 256-entry table per byte of [a]).  Likewise the
    variants below, up to [alpha^64]. *)

val mul_alpha16 : t -> t
val mul_alpha24 : t -> t
val mul_alpha32 : t -> t
val mul_alpha40 : t -> t
val mul_alpha48 : t -> t
val mul_alpha56 : t -> t
val mul_alpha64 : t -> t

val inv : t -> t
(** Multiplicative inverse via [a{^2{^32}-2}].

    @raise Division_by_zero if the argument is [zero]. *)

val div : t -> t -> t
(** [div a b = mul a (inv b)].

    @raise Division_by_zero if [b] is [zero]. *)

(** The bit-serial reference implementation: the differential-testing
    oracle, and the generator of every table in this module.  Never used
    on a hot path. *)
module Ref : sig
  val mul : t -> t -> t
  (** Russian-peasant multiplication, 32 interleaved shift/reduce
      steps. *)

  val alpha_pow : int -> t
  (** O(popcount i) reference exponentiation over the [alpha{^2{^k}}]
      ladder, built with {!Ref.mul} only.

      @raise Invalid_argument on a negative exponent. *)
end

(** Overflow table for the slicing-by-8 WSC-2 kernel
    ([Wsc2.add_bytes]).  Multiplying a 32-bit value [v] by [x^k]
    ([k <= 8]) is [((v lsl k) land 0xFFFF_FFFF) lxor
    ovf.(v lsr (32 - k))]: the bits shifted out re-enter through their
    product with [x^32 = 0x8d (mod m)].  One 256-entry table covers the
    [alpha^1..alpha^7] symbol weights of a 32-byte block and the
    [alpha^8] Horner step.

    Exposed for the kernel and for differential tests; treat as
    read-only. *)
module Slice : sig
  val ovf : int array
  (** [ovf.(c) = c * x^32 mod m] for [c < 256]. *)
end

val pp : Format.formatter -> t -> unit
(** Prints an element as [0x%08x]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
