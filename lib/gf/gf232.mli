(** Arithmetic in the finite field GF(2{^32}).

    Elements are polynomials over GF(2) of degree < 32, represented as the
    low 32 bits of a native [int] (bit [i] is the coefficient of [x{^i}]).
    Reduction is modulo the primitive pentanomial

    {[ m(x) = x^32 + x^7 + x^3 + x^2 + 1 ]}

    so the element [alpha] = [x] generates the multiplicative group of
    order 2{^32} - 1.  This field underlies the WSC-2 weighted-sum error
    detection code of Feldmeier (SIGCOMM '93) / McAuley: symbol [d_i] at
    position [i] is weighted by [alpha^i], which requires only [add],
    [mul] and fast exponentiation. *)

type t = int
(** A field element; always in the range [0, 0xFFFF_FFFF]. *)

val zero : t
(** The additive identity. *)

val one : t
(** The multiplicative identity. *)

val alpha : t
(** The generator [x] (the polynomial of degree 1). *)

val of_int32_bits : int32 -> t
(** Reinterpret the 32 bits of an [int32] as a field element. *)

val to_int32_bits : t -> int32
(** Inverse of {!of_int32_bits}. *)

val is_valid : t -> bool
(** [is_valid a] is [true] iff [a] is a normalised element (fits in 32
    bits and is non-negative). *)

val add : t -> t -> t
(** Field addition = polynomial addition over GF(2) = bitwise XOR.
    Every element is its own additive inverse, so [add] is also
    subtraction. *)

val xtime : t -> t
(** [xtime a] is [mul alpha a]: one shift-and-reduce step.  This is the
    cheap incremental weight update used when accumulating consecutive
    symbol positions. *)

val mul : t -> t -> t
(** Carry-less polynomial multiplication reduced modulo [m(x)].
    Implemented as 32 interleaved shift/reduce steps so intermediate
    values never exceed 32 bits (safe on 63-bit native ints). *)

val pow : t -> int -> t
(** [pow a n] is [a] raised to the [n]-th power by square-and-multiply.
    [n] must be non-negative.  [pow a 0 = one] (including for [a = zero],
    by convention). *)

val alpha_pow : int -> t
(** [alpha_pow i] is [alpha] to the [i]-th power — the WSC-2 weight of
    position [i].  Accelerated by a precomputed table of
    [alpha{^2{^k}}]. *)

val inv : t -> t
(** Multiplicative inverse via [a{^2{^32}-2}].

    @raise Division_by_zero if the argument is [zero]. *)

val div : t -> t -> t
(** [div a b = mul a (inv b)].

    @raise Division_by_zero if [b] is [zero]. *)

val pp : Format.formatter -> t -> unit
(** Prints an element as [0x%08x]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
